package frontier

import (
	"container/heap"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"webevolve/internal/webgraph"
)

// Sharded is CollUrls partitioned into per-site shards: every URL is
// assigned to a shard by a hash of its host, so all pages of one site
// live in one shard. The partitioning serves the concurrent crawl
// engine two ways:
//
//   - Politeness is enforced per shard: consecutive pops from one shard
//     are spaced by the configured minimum gap, and a worker can claim a
//     shard exclusively while it fetches from it, so no two workers ever
//     hit the same site at once.
//
//   - Pop order stays globally deterministic: PopDue and Pop always
//     return the earliest-due entry across all ready shards, using the
//     same (due, priority, URL) order as CollUrls. With a zero politeness
//     gap the pop sequence is identical to a single CollUrls regardless
//     of the shard count, which keeps simulated experiments reproducible.
//
// All methods are safe for concurrent use.
type Sharded struct {
	shards []*shard
	// minGap is the per-shard politeness gap between consecutive pops,
	// in the caller's time unit (virtual or wall-clock days). Stored as
	// float64 bits so a shard server can apply a client-requested gap
	// while pops are in flight.
	minGap atomic.Uint64
}

type shard struct {
	mu    sync.Mutex
	h     entryHeap
	byURL map[string]*Entry
	// nextReady is the earliest time another entry may be popped from
	// this shard (politeness).
	nextReady float64
	// claimed marks the shard as exclusively held by a worker; claimed
	// shards are skipped by ClaimDue until released.
	claimed bool
}

// NewSharded returns a sharded queue with n shards (n < 1 is treated as
// 1) and no politeness gap.
func NewSharded(n int) *Sharded {
	return NewShardedPolite(n, 0)
}

// NewShardedPolite returns a sharded queue whose shards refuse to yield
// two entries less than minGap time units apart.
func NewShardedPolite(n int, minGap float64) *Sharded {
	if n < 1 {
		n = 1
	}
	s := &Sharded{shards: make([]*shard, n)}
	s.SetPoliteness(minGap)
	for i := range s.shards {
		s.shards[i] = &shard{byURL: make(map[string]*Entry)}
	}
	return s
}

// SetPoliteness changes the per-shard politeness gap. Negative gaps are
// treated as zero. Safe to call while pops are in flight; already-set
// shard deadlines are unaffected.
func (q *Sharded) SetPoliteness(minGap float64) {
	if minGap < 0 {
		minGap = 0
	}
	q.minGap.Store(math.Float64bits(minGap))
}

// Politeness returns the current per-shard politeness gap.
func (q *Sharded) Politeness() float64 {
	return math.Float64frombits(q.minGap.Load())
}

// NumShards returns the shard count.
func (q *Sharded) NumShards() int { return len(q.shards) }

// ShardOf returns the shard index url hashes to. All URLs of one host
// map to the same shard.
func (q *Sharded) ShardOf(url string) int {
	return HostShard(webgraph.SiteOf(url), len(q.shards))
}

func (q *Sharded) shardFor(url string) *shard { return q.shards[q.ShardOf(url)] }

// Push inserts or reschedules url in its shard.
func (q *Sharded) Push(url string, due, priority float64) {
	s := q.shardFor(url)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.byURL[url]; ok {
		e.Due = due
		e.Priority = priority
		heap.Fix(&s.h, e.index)
		return
	}
	e := &Entry{URL: url, Due: due, Priority: priority}
	heap.Push(&s.h, e)
	s.byURL[url] = e
}

// PushBatch inserts or reschedules every entry, equivalent to calling
// Push for each. The final queue state is independent of entry order,
// which is what lets remote implementations ship one frame per server
// instead of one per URL.
func (q *Sharded) PushBatch(entries []Entry) {
	for _, e := range entries {
		q.Push(e.URL, e.Due, e.Priority)
	}
}

// entryBefore reports whether a pops before b, mirroring entryHeap's
// order.
func entryBefore(a, b Entry) bool {
	if a.Due != b.Due {
		return a.Due < b.Due
	}
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.URL < b.URL
}

// popLocked removes and returns the shard's head. Caller holds s.mu.
func (s *shard) popLocked() Entry {
	e := heap.Pop(&s.h).(*Entry)
	delete(s.byURL, e.URL)
	return *e
}

// headDue reports the shard's head entry when it is poppable at now:
// unclaimed (when skipClaimed), politeness-ready, and due.
func (s *shard) headDue(now float64, skipClaimed bool) (Entry, bool) {
	if (skipClaimed && s.claimed) || s.nextReady > now || len(s.h) == 0 || s.h[0].Due > now {
		return Entry{}, false
	}
	return *s.h[0], true
}

// popDue removes and returns the globally earliest due entry among
// ready shards; claim additionally claims the winning shard. The shard
// index of the popped entry is returned for Release.
func (q *Sharded) popDue(now float64, claim bool) (Entry, int, bool) {
	for {
		best := -1
		var bestE Entry
		for i, s := range q.shards {
			s.mu.Lock()
			if e, ok := s.headDue(now, claim); ok && (best < 0 || entryBefore(e, bestE)) {
				best, bestE = i, e
			}
			s.mu.Unlock()
		}
		if best < 0 {
			return Entry{}, -1, false
		}
		s := q.shards[best]
		s.mu.Lock()
		// Re-validate under the lock: another goroutine may have raced
		// us to this shard's head. If so, rescan.
		if e, ok := s.headDue(now, claim); ok && e.URL == bestE.URL {
			got := s.popLocked()
			s.nextReady = now + q.Politeness()
			if claim {
				s.claimed = true
			}
			s.mu.Unlock()
			return got, best, true
		}
		s.mu.Unlock()
	}
}

// PopDue removes and returns the earliest entry due at or before now
// across all politeness-ready shards; ok is false when nothing is
// poppable.
func (q *Sharded) PopDue(now float64) (Entry, bool) {
	e, _, ok := q.popDue(now, false)
	return e, ok
}

// ClaimDue is PopDue for worker pools: it additionally claims the
// winning shard exclusively, so no other worker can pop from it until
// Release. The returned shard index must be passed to Release.
func (q *Sharded) ClaimDue(now float64) (Entry, int, bool) {
	return q.popDue(now, true)
}

// HeadDue returns, without popping, the entry PopDue (or, with
// skipClaimed, ClaimDue) would return at now. It is the peek half of
// the two-step distributed pop: cluster.RemoteShards asks every shard
// server for its HeadDue candidate, picks the global minimum, and pops
// it from the winning server with PopDueMatch.
func (q *Sharded) HeadDue(now float64, skipClaimed bool) (Entry, bool) {
	found := false
	var bestE Entry
	for _, s := range q.shards {
		s.mu.Lock()
		if e, ok := s.headDue(now, skipClaimed); ok && (!found || entryBefore(e, bestE)) {
			found, bestE = true, e
		}
		s.mu.Unlock()
	}
	return bestE, found
}

// PopDueMatch pops url only if it is currently the poppable head of its
// shard at now — due, politeness-ready, and (when claim is set)
// unclaimed; claim additionally claims the shard. It is the commit half
// of the distributed pop: ok is false when the head moved since the
// caller peeked, in which case the caller rescans.
func (q *Sharded) PopDueMatch(now float64, url string, claim bool) (Entry, int, bool) {
	sid := q.ShardOf(url)
	s := q.shards[sid]
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.headDue(now, claim)
	if !ok || e.URL != url {
		return Entry{}, -1, false
	}
	got := s.popLocked()
	s.nextReady = now + q.Politeness()
	if claim {
		s.claimed = true
	}
	return got, sid, true
}

// topNLocked returns the shard's first n entries in pop order without
// mutating the heap: a best-first walk over the heap array driven by a
// small index heap (O(n log n), no per-entry allocation beyond the
// result). Caller holds s.mu.
func (s *shard) topNLocked(n int) []Entry {
	if n <= 0 || len(s.h) == 0 {
		return nil
	}
	if n > len(s.h) {
		n = len(s.h)
	}
	// idxs is a min-heap of positions into s.h, ordered by the entry
	// comparator; the heap-array children of a popped position are the
	// only new candidates for the next-smallest entry.
	idxs := make([]int, 1, 2*n+1)
	idxs[0] = 0
	less := func(a, b int) bool { return s.h.Less(idxs[a], idxs[b]) }
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			sm := i
			if l < len(idxs) && less(l, sm) {
				sm = l
			}
			if r < len(idxs) && less(r, sm) {
				sm = r
			}
			if sm == i {
				return
			}
			idxs[i], idxs[sm] = idxs[sm], idxs[i]
			i = sm
		}
	}
	up := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !less(i, p) {
				return
			}
			idxs[i], idxs[p] = idxs[p], idxs[i]
			i = p
		}
	}
	out := make([]Entry, 0, n)
	for len(out) < n && len(idxs) > 0 {
		head := idxs[0]
		ent := *s.h[head]
		ent.index = 0 // the heap position is meaningless in a copy
		out = append(out, ent)
		last := len(idxs) - 1
		idxs[0] = idxs[last]
		idxs = idxs[:last]
		down(0)
		if l := 2*head + 1; l < len(s.h) {
			idxs = append(idxs, l)
			up(len(idxs) - 1)
		}
		if r := 2*head + 2; r < len(s.h) {
			idxs = append(idxs, r)
			up(len(idxs) - 1)
		}
	}
	return out
}

// PeekN returns the first n entries of the global pop order (due
// ascending, then priority descending, then URL), without removing
// anything and ignoring politeness deadlines and claims — the peek
// half of the batched round protocol, which only runs with a zero
// politeness gap and no claim users (see ApplyRound). complete reports
// that the returned entries are the entire queue.
func (q *Sharded) PeekN(n int) ([]Entry, bool) {
	total := 0
	var out []Entry
	for _, s := range q.shards {
		s.mu.Lock()
		total += len(s.h)
		out = append(out, s.topNLocked(n)...)
		s.mu.Unlock()
	}
	// Per-shard top-n suffices: the global first n entries draw at most
	// n from any one shard.
	sort.Slice(out, func(i, j int) bool { return entryBefore(out[i], out[j]) })
	complete := total <= n
	if n < 0 {
		n = 0
	}
	if len(out) > n {
		out = out[:n]
	}
	return out, complete
}

// ApplyRound applies one crawl-engine dispatch round in a single call:
// pops (entries the engine already consumed from a previous PeekN
// prefix), removes (dropped pages; absent URLs are fine), then pushes —
// and returns the next peekMax pop candidates. With a zero politeness
// gap a pop is exactly a removal, so the round folds into plain queue
// operations; with a gap configured the round protocol is unsound
// (candidates could not see politeness deadlines) and ok is false with
// nothing applied. bound/boundOK mark the exactness limit of the
// candidates: entries not returned order strictly after bound (boundOK
// false means cands is the whole queue).
//
// It is the server-side half of the cluster's opRound op, and the
// in-process frontier serves it too, so the engine drives local and
// remote shards through one code path (core's frontierRounds).
func (q *Sharded) ApplyRound(pops, removes []string, pushes []Entry, peekMax int) (cands []Entry, bound Entry, boundOK, ok bool) {
	if q.Politeness() > 0 {
		return nil, Entry{}, false, false
	}
	for _, u := range pops {
		q.Remove(u)
	}
	for _, u := range removes {
		q.Remove(u)
	}
	q.PushBatch(pushes)
	if peekMax <= 0 {
		return nil, Entry{}, false, true
	}
	cands, complete := q.PeekN(peekMax)
	if !complete && len(cands) > 0 {
		bound, boundOK = cands[len(cands)-1], true
	}
	return cands, bound, boundOK, true
}

// Release returns a claimed shard to the pool and sets its politeness
// deadline: no entry will be popped from it before nextReady.
func (q *Sharded) Release(shard int, nextReady float64) {
	s := q.shards[shard]
	s.mu.Lock()
	s.claimed = false
	if nextReady > s.nextReady {
		s.nextReady = nextReady
	}
	s.mu.Unlock()
}

// Pop removes and returns the globally earliest entry regardless of due
// time, politeness, or claims.
func (q *Sharded) Pop() (Entry, error) {
	for {
		best := -1
		var bestE Entry
		for i, s := range q.shards {
			s.mu.Lock()
			if len(s.h) > 0 {
				if e := *s.h[0]; best < 0 || entryBefore(e, bestE) {
					best, bestE = i, e
				}
			}
			s.mu.Unlock()
		}
		if best < 0 {
			return Entry{}, ErrEmpty
		}
		s := q.shards[best]
		s.mu.Lock()
		if len(s.h) > 0 && s.h[0].URL == bestE.URL {
			got := s.popLocked()
			s.mu.Unlock()
			return got, nil
		}
		s.mu.Unlock()
	}
}

// Peek returns the globally earliest entry without removing it,
// ignoring politeness and claims.
func (q *Sharded) Peek() (Entry, bool) {
	found := false
	var bestE Entry
	for _, s := range q.shards {
		s.mu.Lock()
		if len(s.h) > 0 {
			if e := *s.h[0]; !found || entryBefore(e, bestE) {
				found, bestE = true, e
			}
		}
		s.mu.Unlock()
	}
	return bestE, found
}

// NextEvent returns the earliest time any entry becomes poppable,
// accounting for per-shard politeness deadlines: the minimum over
// shards of max(head due, shard ready time). ok is false when the queue
// is empty.
func (q *Sharded) NextEvent() (float64, bool) {
	found := false
	var next float64
	for _, s := range q.shards {
		s.mu.Lock()
		if len(s.h) > 0 {
			t := s.h[0].Due
			if s.nextReady > t {
				t = s.nextReady
			}
			if !found || t < next {
				found, next = true, t
			}
		}
		s.mu.Unlock()
	}
	return next, found
}

// Reset empties every shard and clears claims and politeness deadlines.
// A shard server resets between experiments so sequential crawls over
// one cluster start from a clean frontier.
func (q *Sharded) Reset() {
	for _, s := range q.shards {
		s.mu.Lock()
		s.h = nil
		s.byURL = make(map[string]*Entry)
		s.nextReady = 0
		s.claimed = false
		s.mu.Unlock()
	}
}

// ClearClaims releases every exclusive shard claim without touching
// politeness deadlines or entries. A shard server runs it when a fresh
// client session connects: claims held by a vanished previous client
// would otherwise wedge their shards forever.
func (q *Sharded) ClearClaims() {
	for _, s := range q.shards {
		s.mu.Lock()
		s.claimed = false
		s.mu.Unlock()
	}
}

// ShardState is one shard's scheduling state in a State snapshot.
type ShardState struct {
	// NextReady is the shard's politeness deadline.
	NextReady float64
	// Claimed marks the shard as exclusively held by a worker.
	Claimed bool
}

// State is a point-in-time capture of a Sharded queue: the politeness
// gap, every queued entry, and the per-shard scheduling state. It is
// what a shard server persists so a frontier survives a restart.
type State struct {
	Politeness float64
	Shards     []ShardState
	Entries    []Entry
}

// Snapshot captures the queue's full state. Shards are locked one at a
// time, so a caller that needs a consistent cut must pause mutations
// (the shard server holds its WAL lock across Snapshot).
func (q *Sharded) Snapshot() State {
	st := State{
		Politeness: q.Politeness(),
		Shards:     make([]ShardState, len(q.shards)),
	}
	for i, s := range q.shards {
		s.mu.Lock()
		st.Shards[i] = ShardState{NextReady: s.nextReady, Claimed: s.claimed}
		for _, e := range s.h {
			st.Entries = append(st.Entries, Entry{URL: e.URL, Due: e.Due, Priority: e.Priority})
		}
		s.mu.Unlock()
	}
	// Deterministic snapshot bytes regardless of shard layout.
	sort.Slice(st.Entries, func(i, j int) bool { return st.Entries[i].URL < st.Entries[j].URL })
	return st
}

// Restore replaces the queue's state with a snapshot. Entries are
// re-hashed into the current shard layout; the per-shard scheduling
// state is applied only when the shard count matches the snapshot's
// (politeness deadlines and claims are meaningless across a re-shard).
func (q *Sharded) Restore(st State) {
	q.Reset()
	q.SetPoliteness(st.Politeness)
	q.PushBatch(st.Entries)
	if len(st.Shards) != len(q.shards) {
		return
	}
	for i, ss := range st.Shards {
		s := q.shards[i]
		s.mu.Lock()
		s.nextReady = ss.NextReady
		s.claimed = ss.Claimed
		s.mu.Unlock()
	}
}

// ExtractPartitions removes and returns every queued entry whose site
// hashes into one of the given ring partitions (HostShard over parts
// buckets — the cluster ring's key fold, which is independent of this
// queue's shard count). The result is sorted by URL, so the extraction
// bytes are deterministic for a given queue state: the shard server
// WAL-logs the operation and must re-produce it identically on replay.
// Entries not in the partition set are untouched, as are politeness
// deadlines and claims.
func (q *Sharded) ExtractPartitions(parts int, set map[int]bool) []Entry {
	var out []Entry
	for _, s := range q.shards {
		s.mu.Lock()
		var doomed []*Entry
		for url, e := range s.byURL {
			if set[HostShard(webgraph.SiteOf(url), parts)] {
				doomed = append(doomed, e)
			}
		}
		for _, e := range doomed {
			out = append(out, Entry{URL: e.URL, Due: e.Due, Priority: e.Priority})
			heap.Remove(&s.h, e.index)
			delete(s.byURL, e.URL)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// Remove deletes url from its shard, reporting whether it was present.
func (q *Sharded) Remove(url string) bool {
	s := q.shardFor(url)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byURL[url]
	if !ok {
		return false
	}
	heap.Remove(&s.h, e.index)
	delete(s.byURL, url)
	return true
}

// Contains reports whether url is queued.
func (q *Sharded) Contains(url string) bool {
	s := q.shardFor(url)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.byURL[url]
	return ok
}

// Len returns the total number of queued entries.
func (q *Sharded) Len() int {
	n := 0
	for _, s := range q.shards {
		s.mu.Lock()
		n += len(s.h)
		s.mu.Unlock()
	}
	return n
}

// URLs returns all queued URLs in sorted order.
func (q *Sharded) URLs() []string {
	var out []string
	for _, s := range q.shards {
		s.mu.Lock()
		for u := range s.byURL {
			out = append(out, u)
		}
		s.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// ShardLens returns the entry count of every shard (observability and
// balance tests).
func (q *Sharded) ShardLens() []int {
	out := make([]int, len(q.shards))
	for i, s := range q.shards {
		s.mu.Lock()
		out[i] = len(s.h)
		s.mu.Unlock()
	}
	return out
}
