package frontier

import (
	"container/heap"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"webevolve/internal/webgraph"
)

// Sharded is CollUrls partitioned into per-site shards: every URL is
// assigned to a shard by a hash of its host, so all pages of one site
// live in one shard. The partitioning serves the concurrent crawl
// engine two ways:
//
//   - Politeness is enforced per shard: consecutive pops from one shard
//     are spaced by the configured minimum gap, and a worker can claim a
//     shard exclusively while it fetches from it, so no two workers ever
//     hit the same site at once.
//
//   - Pop order stays globally deterministic: PopDue and Pop always
//     return the earliest-due entry across all ready shards, using the
//     same (due, priority, URL) order as CollUrls. With a zero politeness
//     gap the pop sequence is identical to a single CollUrls regardless
//     of the shard count, which keeps simulated experiments reproducible.
//
// Each shard's entries live behind a shardStore: fully in RAM by
// default (NewSharded), or spilled to an append-only record log with
// only the due-soon head resident (OpenSharded with a SpillDir) — the
// pop order is bit-identical either way.
//
// All methods are safe for concurrent use.
type Sharded struct {
	shards []*shard
	// minGap is the per-shard politeness gap between consecutive pops,
	// in the caller's time unit (virtual or wall-clock days). Stored as
	// float64 bits so a shard server can apply a client-requested gap
	// while pops are in flight.
	minGap atomic.Uint64
}

type shard struct {
	mu sync.Mutex
	st shardStore
	// nextReady is the earliest time another entry may be popped from
	// this shard (politeness).
	nextReady float64
	// claimed marks the shard as exclusively held by a worker; claimed
	// shards are skipped by ClaimDue until released.
	claimed bool
}

// NewSharded returns a sharded queue with n shards (n < 1 is treated as
// 1) and no politeness gap.
func NewSharded(n int) *Sharded {
	return NewShardedPolite(n, 0)
}

// NewShardedPolite returns a sharded queue whose shards refuse to yield
// two entries less than minGap time units apart.
func NewShardedPolite(n int, minGap float64) *Sharded {
	q, err := OpenSharded(StoreConfig{Shards: n, Politeness: minGap})
	if err != nil {
		// The in-memory tier cannot fail to open.
		panic(err)
	}
	return q
}

// OpenSharded returns a sharded queue with the storage tier the config
// selects: in-memory when SpillDir is empty, disk-backed otherwise. A
// disk-backed queue reopening an existing spill directory recovers the
// entries its logs hold (politeness deadlines, claims and the gap are
// not in the logs — the shardd WAL is the full-state durability plane);
// it should be Closed when done.
func OpenSharded(cfg StoreConfig) (*Sharded, error) {
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	q := &Sharded{shards: make([]*shard, n)}
	q.SetPoliteness(cfg.Politeness)
	if cfg.SpillDir == "" {
		for i := range q.shards {
			q.shards[i] = &shard{st: newMemStore()}
		}
		return q, nil
	}
	if err := os.MkdirAll(cfg.SpillDir, 0o755); err != nil {
		return nil, fmt.Errorf("frontier: spill dir: %w", err)
	}
	budget := cfg.ResidentBudget
	if budget <= 0 {
		budget = DefaultResidentBudget
	}
	// A shard's resident set can exceed its fill budget by the one
	// promoted head-competitor ensureHead pulls in (see diskStore), so
	// reserve that slot per shard to keep the summed gauge under the
	// configured budget.
	per := budget/n - 1
	if per < 1 {
		per = 1
	}
	for i := range q.shards {
		ds, err := openDiskStore(filepath.Join(cfg.SpillDir, fmt.Sprintf("frontier-%04d.log", i)), per)
		if err != nil {
			for _, s := range q.shards[:i] {
				s.st.close()
			}
			return nil, err
		}
		q.shards[i] = &shard{st: ds}
	}
	return q, nil
}

// Close releases the storage tier (flushing and closing the spill logs
// of a disk-backed queue). A no-op for the in-memory tier.
func (q *Sharded) Close() error {
	var first error
	for _, s := range q.shards {
		s.mu.Lock()
		err := s.st.close()
		s.mu.Unlock()
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Tier reports the queue's residency split summed over shards: for the
// in-memory tier everything is resident; for the disk tier it is the
// materialized head versus the spilled log (the shardd gauges).
func (q *Sharded) Tier() TierStats {
	var t TierStats
	for _, s := range q.shards {
		s.mu.Lock()
		t = t.add(s.st.tier())
		s.mu.Unlock()
	}
	return t
}

// SetPoliteness changes the per-shard politeness gap. Negative gaps are
// treated as zero. Safe to call while pops are in flight; already-set
// shard deadlines are unaffected.
func (q *Sharded) SetPoliteness(minGap float64) {
	if minGap < 0 {
		minGap = 0
	}
	q.minGap.Store(math.Float64bits(minGap))
}

// Politeness returns the current per-shard politeness gap.
func (q *Sharded) Politeness() float64 {
	return math.Float64frombits(q.minGap.Load())
}

// NumShards returns the shard count.
func (q *Sharded) NumShards() int { return len(q.shards) }

// ShardOf returns the shard index url hashes to. All URLs of one host
// map to the same shard.
func (q *Sharded) ShardOf(url string) int {
	return HostShard(webgraph.SiteOf(url), len(q.shards))
}

func (q *Sharded) shardFor(url string) *shard { return q.shards[q.ShardOf(url)] }

// Push inserts or reschedules url in its shard.
func (q *Sharded) Push(url string, due, priority float64) {
	s := q.shardFor(url)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st.put(Entry{URL: url, Due: due, Priority: priority})
}

// PushBatch inserts or reschedules every entry, equivalent to calling
// Push for each. The final queue state is independent of entry order,
// which is what lets remote implementations ship one frame per server
// instead of one per URL.
func (q *Sharded) PushBatch(entries []Entry) {
	for _, e := range entries {
		q.Push(e.URL, e.Due, e.Priority)
	}
}

// entryBefore reports whether a pops before b, mirroring entryHeap's
// order.
func entryBefore(a, b Entry) bool {
	if a.Due != b.Due {
		return a.Due < b.Due
	}
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.URL < b.URL
}

// headDue reports the shard's head entry when it is poppable at now:
// unclaimed (when skipClaimed), politeness-ready, and due. The claim
// and politeness gates run before the store is consulted, so blocked
// shards never pay a disk-tier promotion.
func (s *shard) headDue(now float64, skipClaimed bool) (Entry, bool) {
	if (skipClaimed && s.claimed) || s.nextReady > now {
		return Entry{}, false
	}
	e, ok := s.st.head()
	if !ok || e.Due > now {
		return Entry{}, false
	}
	return e, true
}

// popDue removes and returns the globally earliest due entry among
// ready shards; claim additionally claims the winning shard. The shard
// index of the popped entry is returned for Release.
func (q *Sharded) popDue(now float64, claim bool) (Entry, int, bool) {
	for {
		best := -1
		var bestE Entry
		for i, s := range q.shards {
			s.mu.Lock()
			if e, ok := s.headDue(now, claim); ok && (best < 0 || entryBefore(e, bestE)) {
				best, bestE = i, e
			}
			s.mu.Unlock()
		}
		if best < 0 {
			return Entry{}, -1, false
		}
		s := q.shards[best]
		s.mu.Lock()
		// Re-validate under the lock: another goroutine may have raced
		// us to this shard's head. If so, rescan.
		if e, ok := s.headDue(now, claim); ok && e.URL == bestE.URL {
			got := s.st.popHead()
			s.nextReady = now + q.Politeness()
			if claim {
				s.claimed = true
			}
			s.mu.Unlock()
			return got, best, true
		}
		s.mu.Unlock()
	}
}

// PopDue removes and returns the earliest entry due at or before now
// across all politeness-ready shards; ok is false when nothing is
// poppable.
func (q *Sharded) PopDue(now float64) (Entry, bool) {
	e, _, ok := q.popDue(now, false)
	return e, ok
}

// ClaimDue is PopDue for worker pools: it additionally claims the
// winning shard exclusively, so no other worker can pop from it until
// Release. The returned shard index must be passed to Release.
func (q *Sharded) ClaimDue(now float64) (Entry, int, bool) {
	return q.popDue(now, true)
}

// HeadDue returns, without popping, the entry PopDue (or, with
// skipClaimed, ClaimDue) would return at now. It is the peek half of
// the two-step distributed pop: cluster.RemoteShards asks every shard
// server for its HeadDue candidate, picks the global minimum, and pops
// it from the winning server with PopDueMatch.
func (q *Sharded) HeadDue(now float64, skipClaimed bool) (Entry, bool) {
	found := false
	var bestE Entry
	for _, s := range q.shards {
		s.mu.Lock()
		if e, ok := s.headDue(now, skipClaimed); ok && (!found || entryBefore(e, bestE)) {
			found, bestE = true, e
		}
		s.mu.Unlock()
	}
	return bestE, found
}

// PopDueMatch pops url only if it is currently the poppable head of its
// shard at now — due, politeness-ready, and (when claim is set)
// unclaimed; claim additionally claims the shard. It is the commit half
// of the distributed pop: ok is false when the head moved since the
// caller peeked, in which case the caller rescans.
func (q *Sharded) PopDueMatch(now float64, url string, claim bool) (Entry, int, bool) {
	sid := q.ShardOf(url)
	s := q.shards[sid]
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.headDue(now, claim)
	if !ok || e.URL != url {
		return Entry{}, -1, false
	}
	got := s.st.popHead()
	s.nextReady = now + q.Politeness()
	if claim {
		s.claimed = true
	}
	return got, sid, true
}

// PeekN returns the first n entries of the global pop order (due
// ascending, then priority descending, then URL), without removing
// anything and ignoring politeness deadlines and claims — the peek
// half of the batched round protocol, which only runs with a zero
// politeness gap and no claim users (see ApplyRound). complete reports
// that the returned entries are the entire queue.
func (q *Sharded) PeekN(n int) ([]Entry, bool) {
	total := 0
	var out []Entry
	for _, s := range q.shards {
		s.mu.Lock()
		total += s.st.size()
		out = append(out, s.st.topN(n)...)
		s.mu.Unlock()
	}
	// Per-shard top-n suffices: the global first n entries draw at most
	// n from any one shard.
	sort.Slice(out, func(i, j int) bool { return entryBefore(out[i], out[j]) })
	complete := total <= n
	if n < 0 {
		n = 0
	}
	if len(out) > n {
		out = out[:n]
	}
	return out, complete
}

// ApplyRound applies one crawl-engine dispatch round in a single call:
// pops (entries the engine already consumed from a previous PeekN
// prefix), removes (dropped pages; absent URLs are fine), then pushes —
// and returns the next peekMax pop candidates. With a zero politeness
// gap a pop is exactly a removal, so the round folds into plain queue
// operations; with a gap configured the round protocol is unsound
// (candidates could not see politeness deadlines) and ok is false with
// nothing applied. bound/boundOK mark the exactness limit of the
// candidates: entries not returned order strictly after bound (boundOK
// false means cands is the whole queue).
//
// It is the server-side half of the cluster's opRound op, and the
// in-process frontier serves it too, so the engine drives local and
// remote shards through one code path (core's frontierRounds).
func (q *Sharded) ApplyRound(pops, removes []string, pushes []Entry, peekMax int) (cands []Entry, bound Entry, boundOK, ok bool) {
	if q.Politeness() > 0 {
		return nil, Entry{}, false, false
	}
	for _, u := range pops {
		q.Remove(u)
	}
	for _, u := range removes {
		q.Remove(u)
	}
	q.PushBatch(pushes)
	if peekMax <= 0 {
		return nil, Entry{}, false, true
	}
	cands, complete := q.PeekN(peekMax)
	if !complete && len(cands) > 0 {
		bound, boundOK = cands[len(cands)-1], true
	}
	return cands, bound, boundOK, true
}

// Release returns a claimed shard to the pool and sets its politeness
// deadline: no entry will be popped from it before nextReady.
func (q *Sharded) Release(shard int, nextReady float64) {
	s := q.shards[shard]
	s.mu.Lock()
	s.claimed = false
	if nextReady > s.nextReady {
		s.nextReady = nextReady
	}
	s.mu.Unlock()
}

// Pop removes and returns the globally earliest entry regardless of due
// time, politeness, or claims.
func (q *Sharded) Pop() (Entry, error) {
	for {
		best := -1
		var bestE Entry
		for i, s := range q.shards {
			s.mu.Lock()
			if e, ok := s.st.head(); ok && (best < 0 || entryBefore(e, bestE)) {
				best, bestE = i, e
			}
			s.mu.Unlock()
		}
		if best < 0 {
			return Entry{}, ErrEmpty
		}
		s := q.shards[best]
		s.mu.Lock()
		if e, ok := s.st.head(); ok && e.URL == bestE.URL {
			got := s.st.popHead()
			s.mu.Unlock()
			return got, nil
		}
		s.mu.Unlock()
	}
}

// Peek returns the globally earliest entry without removing it,
// ignoring politeness and claims.
func (q *Sharded) Peek() (Entry, bool) {
	found := false
	var bestE Entry
	for _, s := range q.shards {
		s.mu.Lock()
		if e, ok := s.st.head(); ok && (!found || entryBefore(e, bestE)) {
			found, bestE = true, e
		}
		s.mu.Unlock()
	}
	return bestE, found
}

// NextEvent returns the earliest time any entry becomes poppable,
// accounting for per-shard politeness deadlines: the minimum over
// shards of max(head due, shard ready time). ok is false when the queue
// is empty.
func (q *Sharded) NextEvent() (float64, bool) {
	found := false
	var next float64
	for _, s := range q.shards {
		s.mu.Lock()
		if e, ok := s.st.head(); ok {
			t := e.Due
			if s.nextReady > t {
				t = s.nextReady
			}
			if !found || t < next {
				found, next = true, t
			}
		}
		s.mu.Unlock()
	}
	return next, found
}

// Reset empties every shard (truncating a disk tier's spill logs) and
// clears claims and politeness deadlines. A shard server resets between
// experiments so sequential crawls over one cluster start from a clean
// frontier.
func (q *Sharded) Reset() {
	for _, s := range q.shards {
		s.mu.Lock()
		s.st.reset()
		s.nextReady = 0
		s.claimed = false
		s.mu.Unlock()
	}
}

// ClearClaims releases every exclusive shard claim without touching
// politeness deadlines or entries. A shard server runs it when a fresh
// client session connects: claims held by a vanished previous client
// would otherwise wedge their shards forever.
func (q *Sharded) ClearClaims() {
	for _, s := range q.shards {
		s.mu.Lock()
		s.claimed = false
		s.mu.Unlock()
	}
}

// ShardState is one shard's scheduling state in a State snapshot.
type ShardState struct {
	// NextReady is the shard's politeness deadline.
	NextReady float64
	// Claimed marks the shard as exclusively held by a worker.
	Claimed bool
}

// State is a point-in-time capture of a Sharded queue: the politeness
// gap, every queued entry, and the per-shard scheduling state. It is
// what a shard server persists so a frontier survives a restart.
type State struct {
	Politeness float64
	Shards     []ShardState
	Entries    []Entry
}

// SnapshotMeta captures the queue's scheduling state — the politeness
// gap and every shard's (NextReady, Claimed) — without touching the
// entries. It is the header half of a streamed snapshot; StreamEntries
// is the body.
func (q *Sharded) SnapshotMeta() (politeness float64, shards []ShardState) {
	shards = make([]ShardState, len(q.shards))
	for i, s := range q.shards {
		s.mu.Lock()
		shards[i] = ShardState{NextReady: s.nextReady, Claimed: s.claimed}
		s.mu.Unlock()
	}
	return q.Politeness(), shards
}

// SetShardStates applies per-shard scheduling state captured by
// SnapshotMeta. It is a no-op when the shard count differs from the
// capture's (politeness deadlines and claims are meaningless across a
// re-shard).
func (q *Sharded) SetShardStates(shards []ShardState) {
	if len(shards) != len(q.shards) {
		return
	}
	for i, ss := range shards {
		s := q.shards[i]
		s.mu.Lock()
		s.nextReady = ss.NextReady
		s.claimed = ss.Claimed
		s.mu.Unlock()
	}
}

// StreamEntries emits every queued entry in chunks of at most chunk
// entries, holding at most one chunk in memory at a time — the WAL
// writes multi-gigabyte snapshots through it without doubling RSS. The
// chunk slice is reused between calls; emit must not retain it. Chunk
// order is deterministic for a given operation history but not sorted;
// consumers that need an order (Snapshot) sort what they collect.
// Shards are locked one at a time, so a caller needing a consistent cut
// must pause mutations, exactly as with Snapshot.
func (q *Sharded) StreamEntries(chunk int, emit func([]Entry) error) error {
	if chunk < 1 {
		chunk = 1
	}
	buf := make([]Entry, 0, chunk)
	for _, s := range q.shards {
		s.mu.Lock()
		err := s.st.each(func(e Entry) error {
			buf = append(buf, e)
			if len(buf) == chunk {
				err := emit(buf)
				buf = buf[:0]
				return err
			}
			return nil
		})
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}
	if len(buf) > 0 {
		return emit(buf)
	}
	return nil
}

// Snapshot captures the queue's full state in memory. Prefer
// SnapshotMeta + StreamEntries for large frontiers: this materializes
// every entry. Shards are locked one at a time, so a caller that needs
// a consistent cut must pause mutations (the shard server holds its WAL
// lock across Snapshot).
func (q *Sharded) Snapshot() State {
	pol, shards := q.SnapshotMeta()
	st := State{Politeness: pol, Shards: shards}
	q.StreamEntries(4096, func(chunk []Entry) error {
		st.Entries = append(st.Entries, chunk...)
		return nil
	})
	// Deterministic snapshot bytes regardless of shard layout.
	sort.Slice(st.Entries, func(i, j int) bool { return st.Entries[i].URL < st.Entries[j].URL })
	return st
}

// Restore replaces the queue's state with a snapshot. Entries are
// re-hashed into the current shard layout; the per-shard scheduling
// state is applied only when the shard count matches the snapshot's.
func (q *Sharded) Restore(st State) {
	q.Reset()
	q.SetPoliteness(st.Politeness)
	q.PushBatch(st.Entries)
	q.SetShardStates(st.Shards)
}

// urlMaxHeap is a max-heap of entries by URL — the top-k structure that
// bounds ExtractPartitionsLimit's memory to the chunk it returns.
type urlMaxHeap []Entry

func (h urlMaxHeap) Len() int           { return len(h) }
func (h urlMaxHeap) Less(i, j int) bool { return h[i].URL > h[j].URL }
func (h urlMaxHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *urlMaxHeap) Push(x any)        { *h = append(*h, x.(Entry)) }
func (h *urlMaxHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// ExtractPartitions removes and returns every queued entry whose site
// hashes into one of the given ring partitions (HostShard over parts
// buckets — the cluster ring's key fold, which is independent of this
// queue's shard count). The result is sorted by URL, so the extraction
// bytes are deterministic for a given queue state: the shard server
// WAL-logs the operation and must re-produce it identically on replay.
// Entries not in the partition set are untouched, as are politeness
// deadlines and claims.
func (q *Sharded) ExtractPartitions(parts int, set map[int]bool) []Entry {
	out, _ := q.ExtractPartitionsLimit(parts, set, "", 0)
	return out
}

// ExtractPartitionsLimit is ExtractPartitions bounded to the first
// maxN matching entries in URL order strictly after the cursor (maxN
// <= 0 means unbounded, empty cursor means from the start); more
// reports that matching entries beyond the returned chunk remain. It
// is the server half of the chunked migration export: a disk-tier
// frontier hands off its partitions chunk by chunk, never holding more
// than maxN full entries in memory, and the result depends only on the
// queue state and arguments — never on shard iteration order — so a
// WAL replay re-produces each chunk bit for bit.
func (q *Sharded) ExtractPartitionsLimit(parts int, set map[int]bool, after string, maxN int) (out []Entry, more bool) {
	var sel urlMaxHeap
	for _, s := range q.shards {
		s.mu.Lock()
		s.st.each(func(e Entry) error {
			if (after != "" && e.URL <= after) || !set[HostShard(webgraph.SiteOf(e.URL), parts)] {
				return nil
			}
			if maxN > 0 && len(sel) >= maxN {
				more = true
				if e.URL >= sel[0].URL {
					return nil
				}
				heap.Pop(&sel)
			}
			heap.Push(&sel, e)
			return nil
		})
		s.mu.Unlock()
	}
	out = make([]Entry, len(sel))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&sel).(Entry)
	}
	for _, e := range out {
		q.Remove(e.URL)
	}
	return out, more
}

// Remove deletes url from its shard, reporting whether it was present.
func (q *Sharded) Remove(url string) bool {
	s := q.shardFor(url)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.remove(url)
}

// Contains reports whether url is queued.
func (q *Sharded) Contains(url string) bool {
	s := q.shardFor(url)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.contains(url)
}

// Len returns the total number of queued entries.
func (q *Sharded) Len() int {
	n := 0
	for _, s := range q.shards {
		s.mu.Lock()
		n += s.st.size()
		s.mu.Unlock()
	}
	return n
}

// URLs returns all queued URLs in sorted order.
func (q *Sharded) URLs() []string {
	var out []string
	for _, s := range q.shards {
		s.mu.Lock()
		s.st.each(func(e Entry) error {
			out = append(out, e.URL)
			return nil
		})
		s.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// ShardLens returns the entry count of every shard (observability and
// balance tests).
func (q *Sharded) ShardLens() []int {
	out := make([]int, len(q.shards))
	for i, s := range q.shards {
		s.mu.Lock()
		out[i] = s.st.size()
		s.mu.Unlock()
	}
	return out
}
