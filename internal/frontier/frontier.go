// Package frontier implements the two URL data structures of the paper's
// incremental-crawler architecture (Figure 12):
//
//   - AllUrls: the set of every URL the crawler has ever discovered, with
//     the metadata the RankingModule scans (estimated importance, where
//     the URL was seen, whether it is in the collection).
//
//   - CollUrls: the set of URLs that are (or will be) in the Collection,
//     implemented as a priority queue "where the URLs to be crawled early
//     are placed in the front". The UpdateModule pops the head, crawls
//     it, and pushes it back with its next scheduled visit time; the
//     RankingModule pushes brand-new URLs at the very front so they are
//     crawled immediately.
package frontier

import (
	"container/heap"
	"errors"
	"sort"
	"sync"
)

// URLInfo is the AllUrls record for one discovered URL.
type URLInfo struct {
	URL string
	// FirstSeen is the discovery time (days).
	FirstSeen float64
	// InLinks counts distinct discovered pages linking here; a cheap
	// importance proxy refreshed by the ranking module.
	InLinks int
	// Importance is the most recent importance score assigned by the
	// RankingModule (PageRank in the paper's example).
	Importance float64
	// InCollection reports whether the URL is currently in CollUrls.
	InCollection bool
}

// AllUrls records every URL discovered, with metadata. Safe for
// concurrent use: CrawlModules add URLs while the RankingModule scans.
type AllUrls struct {
	mu sync.RWMutex
	m  map[string]*URLInfo
	// inlinkFrom deduplicates in-link counting: source -> set of targets
	// it has reported.
	inlinkFrom map[string]map[string]struct{}
}

// NewAllUrls returns an empty URL table.
func NewAllUrls() *AllUrls {
	return &AllUrls{
		m:          make(map[string]*URLInfo),
		inlinkFrom: make(map[string]map[string]struct{}),
	}
}

// Add records a URL discovered at time now. It returns true when the URL
// is new.
func (a *AllUrls) Add(url string, now float64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.m[url]; ok {
		return false
	}
	a.m[url] = &URLInfo{URL: url, FirstSeen: now}
	return true
}

// AddLink records that page from links to page to, discovered at time
// now. The target is added if new, and its in-link count incremented the
// first time this (from, to) pair is seen.
func (a *AllUrls) AddLink(from, to string, now float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	info, ok := a.m[to]
	if !ok {
		info = &URLInfo{URL: to, FirstSeen: now}
		a.m[to] = info
	}
	seen, ok := a.inlinkFrom[from]
	if !ok {
		seen = make(map[string]struct{})
		a.inlinkFrom[from] = seen
	}
	if _, dup := seen[to]; !dup {
		seen[to] = struct{}{}
		info.InLinks++
	}
}

// Get returns a copy of the record for url.
func (a *AllUrls) Get(url string) (URLInfo, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	info, ok := a.m[url]
	if !ok {
		return URLInfo{}, false
	}
	return *info, true
}

// Len returns the number of discovered URLs.
func (a *AllUrls) Len() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.m)
}

// SetImportance stores an importance score for url, creating the record
// if needed (the ranking module can score URLs it has only seen links
// to — footnote 2 of the paper).
func (a *AllUrls) SetImportance(url string, imp float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	info, ok := a.m[url]
	if !ok {
		info = &URLInfo{URL: url}
		a.m[url] = info
	}
	info.Importance = imp
}

// SetInCollection flags whether url is in the collection.
func (a *AllUrls) SetInCollection(url string, in bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if info, ok := a.m[url]; ok {
		info.InCollection = in
	}
}

// Scan calls fn for every record (copy) in sorted URL order, stopping if
// fn returns false. The RankingModule "constantly scans through AllUrls".
func (a *AllUrls) Scan(fn func(URLInfo) bool) {
	a.mu.RLock()
	urls := make([]string, 0, len(a.m))
	for u := range a.m {
		urls = append(urls, u)
	}
	a.mu.RUnlock()
	sort.Strings(urls)
	for _, u := range urls {
		a.mu.RLock()
		info, ok := a.m[u]
		var cp URLInfo
		if ok {
			cp = *info
		}
		a.mu.RUnlock()
		if !ok {
			continue
		}
		if !fn(cp) {
			return
		}
	}
}

// Candidates returns the non-collection URLs with the highest importance,
// up to k, sorted by importance descending (ties by URL). The
// RankingModule uses this to find replacement candidates.
func (a *AllUrls) Candidates(k int) []URLInfo {
	a.mu.RLock()
	out := make([]URLInfo, 0, 64)
	for _, info := range a.m {
		if !info.InCollection {
			out = append(out, *info)
		}
	}
	a.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Importance != out[j].Importance {
			return out[i].Importance > out[j].Importance
		}
		return out[i].URL < out[j].URL
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Entry is one CollUrls element.
type Entry struct {
	URL string
	// Due is the scheduled visit time; the queue pops the earliest Due
	// first. The RankingModule schedules new pages with Due = -Inf
	// semantics by using a very early time.
	Due float64
	// Priority breaks Due ties: higher first (importance).
	Priority float64
	index    int
}

// ErrEmpty reports a pop from an empty queue.
var ErrEmpty = errors.New("frontier: queue empty")

// CollUrls is the revisit priority queue of Figure 12. Safe for
// concurrent use.
type CollUrls struct {
	mu    sync.Mutex
	h     entryHeap
	byURL map[string]*Entry
}

// NewCollUrls returns an empty queue.
func NewCollUrls() *CollUrls {
	return &CollUrls{byURL: make(map[string]*Entry)}
}

// Len returns the queue size.
func (c *CollUrls) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.h)
}

// Contains reports whether url is queued.
func (c *CollUrls) Contains(url string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.byURL[url]
	return ok
}

// Push inserts or reschedules url. "The position of the crawled URL
// within CollUrls is determined by the page's estimated change frequency"
// — callers encode that in due.
func (c *CollUrls) Push(url string, due, priority float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.byURL[url]; ok {
		e.Due = due
		e.Priority = priority
		heap.Fix(&c.h, e.index)
		return
	}
	e := &Entry{URL: url, Due: due, Priority: priority}
	heap.Push(&c.h, e)
	c.byURL[url] = e
}

// Pop removes and returns the entry with the earliest due time.
func (c *CollUrls) Pop() (Entry, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.h) == 0 {
		return Entry{}, ErrEmpty
	}
	e := heap.Pop(&c.h).(*Entry)
	delete(c.byURL, e.URL)
	return *e, nil
}

// PopDue removes and returns the head entry only if it is due at or
// before now; ok is false when the queue is empty or the head is in the
// future.
func (c *CollUrls) PopDue(now float64) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.h) == 0 || c.h[0].Due > now {
		return Entry{}, false
	}
	e := heap.Pop(&c.h).(*Entry)
	delete(c.byURL, e.URL)
	return *e, true
}

// Peek returns the head entry without removing it.
func (c *CollUrls) Peek() (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.h) == 0 {
		return Entry{}, false
	}
	return *c.h[0], true
}

// Remove deletes url from the queue (the RankingModule discards a page).
// It reports whether the URL was present.
func (c *CollUrls) Remove(url string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byURL[url]
	if !ok {
		return false
	}
	heap.Remove(&c.h, e.index)
	delete(c.byURL, url)
	return true
}

// URLs returns all queued URLs (unordered snapshot).
func (c *CollUrls) URLs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.byURL))
	for u := range c.byURL {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// entryHeap orders by Due ascending, then Priority descending, then URL.
type entryHeap []*Entry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].Due != h[j].Due {
		return h[i].Due < h[j].Due
	}
	if h[i].Priority != h[j].Priority {
		return h[i].Priority > h[j].Priority
	}
	return h[i].URL < h[j].URL
}
func (h entryHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *entryHeap) Push(x any) {
	e := x.(*Entry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
