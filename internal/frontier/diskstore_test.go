package frontier

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"webevolve/internal/webgraph"
)

// openDiskSharded opens a disk-backed queue in a fresh temp dir with a
// deliberately tiny resident budget, so tests exercise the spill path
// hard.
func openDiskSharded(t testing.TB, shards, budget int) *Sharded {
	t.Helper()
	q, err := OpenSharded(StoreConfig{Shards: shards, SpillDir: t.TempDir(), ResidentBudget: budget})
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	t.Cleanup(func() { q.Close() })
	return q
}

func eqEnt(a, b Entry) bool {
	return a.URL == b.URL && a.Due == b.Due && a.Priority == b.Priority
}

// TestDiskTierMatchesMemTier drives an in-memory and a disk-backed
// queue through the same randomized operation mix — pushes with heavy
// (due, priority) ties and reschedules, removes, pops, claims, peeks —
// and requires bit-identical results throughout. This is the disk
// tier's core contract: pop order identical to the in-memory tier.
func TestDiskTierMatchesMemTier(t *testing.T) {
	mem := NewSharded(4)
	disk := openDiskSharded(t, 4, 8) // 2 resident entries per shard

	rng := rand.New(rand.NewSource(7))
	urls := make([]string, 400)
	for i := range urls {
		urls[i] = urlOn(i%37, i)
	}
	var claimed []int
	release := func() {
		sid := claimed[len(claimed)-1]
		claimed = claimed[:len(claimed)-1]
		next := float64(rng.Intn(5))
		mem.Release(sid, next)
		disk.Release(sid, next)
	}
	for step := 0; step < 4000; step++ {
		switch op := rng.Intn(12); {
		case op < 4: // push / reschedule with frequent exact ties
			u := urls[rng.Intn(len(urls))]
			due, prio := float64(rng.Intn(8)), float64(rng.Intn(3))
			mem.Push(u, due, prio)
			disk.Push(u, due, prio)
		case op == 4:
			u := urls[rng.Intn(len(urls))]
			if mem.Remove(u) != disk.Remove(u) {
				t.Fatalf("step %d: Remove(%s) diverged", step, u)
			}
		case op < 7:
			now := float64(rng.Intn(10))
			me, mok := mem.PopDue(now)
			de, dok := disk.PopDue(now)
			if mok != dok || (mok && !eqEnt(me, de)) {
				t.Fatalf("step %d: PopDue(%g): mem=%+v,%v disk=%+v,%v", step, now, me, mok, de, dok)
			}
		case op == 7:
			now := float64(rng.Intn(10))
			me, msid, mok := mem.ClaimDue(now)
			de, dsid, dok := disk.ClaimDue(now)
			if mok != dok || (mok && (!eqEnt(me, de) || msid != dsid)) {
				t.Fatalf("step %d: ClaimDue(%g): mem=%+v,%d,%v disk=%+v,%d,%v", step, now, me, msid, mok, de, dsid, dok)
			}
			if mok {
				claimed = append(claimed, msid)
			}
			if len(claimed) > 2 {
				release()
			}
		case op == 8:
			me, merr := mem.Pop()
			de, derr := disk.Pop()
			if (merr != nil) != (derr != nil) || (merr == nil && !eqEnt(me, de)) {
				t.Fatalf("step %d: Pop: mem=%+v,%v disk=%+v,%v", step, me, merr, de, derr)
			}
		case op == 9:
			n := rng.Intn(25)
			mp, mc := mem.PeekN(n)
			dp, dc := disk.PeekN(n)
			if mc != dc || len(mp) != len(dp) {
				t.Fatalf("step %d: PeekN(%d): mem %d,%v disk %d,%v", step, n, len(mp), mc, len(dp), dc)
			}
			for i := range mp {
				if !eqEnt(mp[i], dp[i]) {
					t.Fatalf("step %d: PeekN(%d)[%d]: mem=%+v disk=%+v", step, n, i, mp[i], dp[i])
				}
			}
		case op == 10:
			mt, mok := mem.NextEvent()
			dt, dok := disk.NextEvent()
			if mok != dok || mt != dt {
				t.Fatalf("step %d: NextEvent: mem=%g,%v disk=%g,%v", step, mt, mok, dt, dok)
			}
		default:
			if mem.Len() != disk.Len() {
				t.Fatalf("step %d: Len: mem=%d disk=%d", step, mem.Len(), disk.Len())
			}
			u := urls[rng.Intn(len(urls))]
			if mem.Contains(u) != disk.Contains(u) {
				t.Fatalf("step %d: Contains(%s) diverged", step, u)
			}
		}
	}
	for len(claimed) > 0 {
		release()
	}
	// Drain both completely; the full pop sequences must match.
	for {
		me, merr := mem.Pop()
		de, derr := disk.Pop()
		if (merr != nil) != (derr != nil) {
			t.Fatalf("drain: mem err=%v disk err=%v", merr, derr)
		}
		if merr != nil {
			break
		}
		if !eqEnt(me, de) {
			t.Fatalf("drain: mem=%+v disk=%+v", me, de)
		}
	}
}

// TestDiskTierResidentBudget verifies the tentpole's memory bound: only
// the due-soon head stays materialized while pushing and draining far
// more entries than the budget.
func TestDiskTierResidentBudget(t *testing.T) {
	const budget = 40
	q := openDiskSharded(t, 2, budget)
	const n = 5000
	for i := 0; i < n; i++ {
		// Distinct dues: exact tie groups may transiently exceed the
		// budget by design, which is not what this test measures.
		q.Push(urlOn(i%53, i), float64(i)*0.001, 0)
	}
	ts := q.Tier()
	if ts.Resident > budget {
		t.Fatalf("after push: %d resident entries, budget %d", ts.Resident, budget)
	}
	if ts.Spilled != n-ts.Resident {
		t.Fatalf("tier stats don't add up: %+v with %d entries", ts, n)
	}
	if ts.SpillBytes == 0 {
		t.Fatalf("no spill bytes after %d pushes", n)
	}
	var prev Entry
	for i := 0; i < n; i++ {
		e, err := q.Pop()
		if err != nil {
			t.Fatalf("pop %d: %v", i, err)
		}
		if i > 0 && entryBefore(e, prev) {
			t.Fatalf("pop %d out of order: %+v after %+v", i, e, prev)
		}
		prev = e
		if ts := q.Tier(); ts.Resident > budget {
			t.Fatalf("pop %d: %d resident entries, budget %d", i, ts.Resident, budget)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty after drain: %d", q.Len())
	}
}

// TestDiskTierReopenRecoversEntries closes a disk-backed queue and
// reopens its spill directory: the record logs alone must reconstruct
// the surviving entries, including reschedules and removals.
func TestDiskTierReopenRecoversEntries(t *testing.T) {
	dir := t.TempDir()
	cfg := StoreConfig{Shards: 4, SpillDir: dir, ResidentBudget: 8}
	q, err := OpenSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		q.Push(urlOn(i%29, i), float64(i%10), float64(i%3))
	}
	for i := 0; i < 60; i++ { // reschedules
		q.Push(urlOn(i%29, i), float64(10+i), 1)
	}
	for i := 100; i < 140; i++ { // removals
		q.Remove(urlOn(i%29, i))
	}
	for i := 0; i < 50; i++ { // pops (tombstone the head)
		if _, err := q.Pop(); err != nil {
			t.Fatal(err)
		}
	}
	want := q.Snapshot().Entries
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenSharded(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	got := r.Snapshot().Entries
	if len(got) != len(want) {
		t.Fatalf("reopen recovered %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if !eqEnt(got[i], want[i]) {
			t.Fatalf("entry %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	// Pop order after recovery must match the order the entries dictate.
	sort.Slice(want, func(i, j int) bool { return entryBefore(want[i], want[j]) })
	for i, w := range want {
		e, err := r.Pop()
		if err != nil {
			t.Fatalf("pop %d after reopen: %v", i, err)
		}
		if !eqEnt(e, w) {
			t.Fatalf("pop %d after reopen: got %+v want %+v", i, e, w)
		}
	}
}

// TestDiskTierTornTailSwept crashes mid-append, in effigy: garbage and
// truncated frames after the last valid record must be swept away on
// reopen, keeping every complete record.
func TestDiskTierTornTailSwept(t *testing.T) {
	dir := t.TempDir()
	cfg := StoreConfig{Shards: 1, SpillDir: dir, ResidentBudget: 4}
	q, err := OpenSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		q.Push(urlOn(0, i), float64(i), 0)
	}
	cleanSize := q.Tier().SpillBytes // one shard: the log's exact size
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "frontier-0000.log")
	if st, err := os.Stat(path); err != nil || st.Size() != cleanSize {
		t.Fatalf("log size %v (err %v), want %d", st, err, cleanSize)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A torn frame: a plausible header promising more payload than the
	// file holds, followed by garbage.
	if _, err := f.Write([]byte{40, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := OpenSharded(cfg)
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	if r.Len() != n {
		t.Fatalf("recovered %d entries, want %d", r.Len(), n)
	}
	if got := r.Tier().SpillBytes; got != cleanSize {
		t.Fatalf("torn tail not truncated: log at %d bytes, want %d", got, cleanSize)
	}
	r.Close()
	if st, err := os.Stat(path); err != nil || st.Size() != cleanSize {
		t.Fatalf("on-disk log %v (err %v), want %d bytes", st, err, cleanSize)
	}
}

// TestDiskTierCorruptRecordTruncatesSuffix flips one CRC byte in the
// middle of the log: recovery must keep every record before the bad
// frame and drop it and everything after — the same discipline as the
// cluster WAL.
func TestDiskTierCorruptRecordTruncatesSuffix(t *testing.T) {
	dir := t.TempDir()
	cfg := StoreConfig{Shards: 1, SpillDir: dir, ResidentBudget: 4}
	q, err := OpenSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const keep, n = 30, 50
	var keepSize int64
	for i := 0; i < n; i++ {
		q.Push(urlOn(0, i), float64(i), 0)
		if i == keep-1 {
			keepSize = q.Tier().SpillBytes
		}
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "frontier-0000.log")
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the CRC of record keep+1 (it starts at keepSize; bytes
	// 4..8 of the frame are the checksum).
	if _, err := f.WriteAt([]byte{0xff}, keepSize+4); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := OpenSharded(cfg)
	if err != nil {
		t.Fatalf("reopen over corrupt record: %v", err)
	}
	defer r.Close()
	if r.Len() != keep {
		t.Fatalf("recovered %d entries, want %d", r.Len(), keep)
	}
	for i := 0; i < keep; i++ {
		e, err := r.Pop()
		if err != nil {
			t.Fatal(err)
		}
		if want := urlOn(0, i); e.URL != want || e.Due != float64(i) {
			t.Fatalf("pop %d: got %+v, want %s due %d", i, e, want, i)
		}
	}
}

// TestDiskTierCompaction reschedules a working set until dead records
// dominate the log, and verifies the log shrinks back to its live
// records without disturbing entries, pop order, or recovery.
func TestDiskTierCompaction(t *testing.T) {
	dir := t.TempDir()
	cfg := StoreConfig{Shards: 1, SpillDir: dir, ResidentBudget: 8}
	q, err := OpenSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("x", 3<<10)
	const live, writes = 1000, 3000
	url := func(i int) string {
		return fmt.Sprintf("http://site000.com/%s/p%04d", pad, i%live)
	}
	var peak int64
	for i := 0; i < writes; i++ {
		q.Push(url(i), float64(i), 0)
		if sb := q.Tier().SpillBytes; sb > peak {
			peak = sb
		}
	}
	ts := q.Tier()
	if ts.SpillBytes >= peak {
		t.Fatalf("log never compacted: %d bytes, peak %d", ts.SpillBytes, peak)
	}
	// Reschedules after the compaction keep appending, so the log is
	// live records plus a sub-threshold tail — well under what an
	// uncompacted log would hold.
	full := int64(writes) * int64(recHeader+1+2+len(url(0))+16)
	if ts.SpillBytes > full*2/3 {
		t.Fatalf("compacted log still %d bytes of %d written", ts.SpillBytes, full)
	}
	if q.Len() != live {
		t.Fatalf("entries after compaction: %d, want %d", q.Len(), live)
	}
	// Reads go through the rewritten offsets.
	for i := 0; i < 10; i++ {
		e, err := q.Pop()
		if err != nil {
			t.Fatal(err)
		}
		if want := url(writes - live + i); e.URL != want || e.Due != float64(writes-live+i) {
			t.Fatalf("pop %d after compaction: got %+v, want %s", i, e, want)
		}
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenSharded(cfg)
	if err != nil {
		t.Fatalf("reopen after compaction: %v", err)
	}
	defer r.Close()
	if r.Len() != live-10 {
		t.Fatalf("recovered %d entries after compaction, want %d", r.Len(), live-10)
	}
}

// TestExtractPartitionsLimitChunks verifies the chunked migration
// export: looping ExtractPartitionsLimit with a cursor must hand over
// exactly what one unbounded ExtractPartitions call does, on both
// storage tiers.
func TestExtractPartitionsLimitChunks(t *testing.T) {
	const parts = 64
	fill := func(q *Sharded) {
		for i := 0; i < 300; i++ {
			q.Push(urlOn(i%31, i), float64(i%7), float64(i%2))
		}
	}
	set := map[int]bool{}
	for p := 0; p < parts; p += 3 {
		set[p] = true
	}
	whole := NewSharded(4)
	fill(whole)
	want := whole.ExtractPartitions(parts, set)

	for _, tier := range []string{"mem", "disk"} {
		q := NewSharded(4)
		if tier == "disk" {
			q = openDiskSharded(t, 4, 8)
		}
		fill(q)
		wantLeft := q.Len() - len(want)
		var got []Entry
		after := ""
		for {
			chunk, more := q.ExtractPartitionsLimit(parts, set, after, 37)
			if !sort.SliceIsSorted(chunk, func(i, j int) bool { return chunk[i].URL < chunk[j].URL }) {
				t.Fatalf("%s: chunk not URL-sorted", tier)
			}
			got = append(got, chunk...)
			if !more || len(chunk) == 0 {
				break
			}
			after = chunk[len(chunk)-1].URL
		}
		if len(got) != len(want) {
			t.Fatalf("%s: chunked export got %d entries, want %d", tier, len(got), len(want))
		}
		for i := range want {
			if !eqEnt(got[i], want[i]) {
				t.Fatalf("%s: entry %d: got %+v want %+v", tier, i, got[i], want[i])
			}
		}
		if q.Len() != wantLeft {
			t.Fatalf("%s: %d entries left after export, want %d", tier, q.Len(), wantLeft)
		}
		for _, e := range got {
			if sid := HostShard(webgraph.SiteOf(e.URL), parts); !set[sid] {
				t.Fatalf("%s: exported %s from partition %d outside the set", tier, e.URL, sid)
			}
		}
	}
}

// TestStreamEntriesCoversQueue verifies the streamed snapshot body:
// chunks collected from StreamEntries must contain exactly the queue's
// entries, on both tiers, with the buffer reused between emits.
func TestStreamEntriesCoversQueue(t *testing.T) {
	for _, tier := range []string{"mem", "disk"} {
		q := NewSharded(4)
		if tier == "disk" {
			q = openDiskSharded(t, 4, 8)
		}
		for i := 0; i < 200; i++ {
			q.Push(urlOn(i%23, i), float64(i%9), float64(i%3))
		}
		var got []Entry
		err := q.StreamEntries(7, func(chunk []Entry) error {
			got = append(got, append([]Entry(nil), chunk...)...)
			return nil
		})
		if err != nil {
			t.Fatalf("%s: StreamEntries: %v", tier, err)
		}
		sort.Slice(got, func(i, j int) bool { return got[i].URL < got[j].URL })
		want := q.Snapshot().Entries
		if len(got) != len(want) {
			t.Fatalf("%s: streamed %d entries, want %d", tier, len(got), len(want))
		}
		for i := range want {
			if !eqEnt(got[i], want[i]) {
				t.Fatalf("%s: entry %d: got %+v want %+v", tier, i, got[i], want[i])
			}
		}
	}
}
