package frontier

import "hash/fnv"

// ShardSet is the shard-facing frontier interface the crawl engines
// consume: a revisit queue partitioned into per-site shards with
// politeness and exclusive-claim semantics. Two implementations exist:
// the in-process *Sharded, and cluster.RemoteShards, which speaks the
// same operations to shard servers on other machines — so core.Crawler,
// core.UpdatePipeline and cmd/webcrawl run unchanged whether their
// shards are local or distributed.
//
// Methods deliberately carry no error returns: the in-process queue
// cannot fail, and remote implementations absorb transport failures
// into a sticky error surfaced out of band (cluster.RemoteShards.Err).
type ShardSet interface {
	// NumShards returns the total shard count across the set.
	NumShards() int
	// ShardOf returns the shard index url hashes to; all URLs of one
	// host map to the same shard.
	ShardOf(url string) int
	// Push inserts or reschedules url.
	Push(url string, due, priority float64)
	// PushBatch inserts or reschedules every entry, equivalent to
	// calling Push for each; the final state is independent of entry
	// order. Remote implementations ship one round trip per server per
	// batch instead of one per URL, so batch-heavy apply paths should
	// prefer it.
	PushBatch(entries []Entry)
	// PopDue removes and returns the globally earliest entry due at or
	// before now across all politeness-ready shards.
	PopDue(now float64) (Entry, bool)
	// ClaimDue is PopDue for worker pools: it additionally claims the
	// winning shard exclusively until Release(shard, ...).
	ClaimDue(now float64) (Entry, int, bool)
	// Release returns a claimed shard and sets its politeness deadline.
	Release(shard int, nextReady float64)
	// Remove deletes url, reporting whether it was present.
	Remove(url string) bool
	// Contains reports whether url is queued.
	Contains(url string) bool
	// Len returns the total number of queued entries.
	Len() int
	// URLs returns all queued URLs in sorted order.
	URLs() []string
	// Peek returns the globally earliest entry without removing it,
	// ignoring politeness and claims.
	Peek() (Entry, bool)
	// NextEvent returns the earliest time any entry becomes poppable,
	// accounting for politeness deadlines.
	NextEvent() (float64, bool)
}

// EntryBefore reports whether a pops before b under the queue order:
// due ascending, then priority descending, then URL. Exported so
// cluster.RemoteShards can pick the global minimum among per-server
// head candidates with exactly the in-process comparator.
func EntryBefore(a, b Entry) bool { return entryBefore(a, b) }

// HostShard is the canonical host-to-shard hash: the shard index (in a
// set of n) that the host of url maps to. Sharded uses it in-process;
// cluster.RemoteShards uses the same function to route URLs to shard
// servers, so host affinity holds at both levels.
func HostShard(host string, n int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(host))
	return int(h.Sum32() % uint32(n))
}
