package frontier

import "container/heap"

// shardStore is one shard's entry storage, behind which the queue keeps
// either a plain in-memory map (memStore, the default) or a disk-backed
// tier (diskStore) that materializes only the due-soon head in RAM.
//
// Every method is called with the owning shard's mutex held, so
// implementations need no locking of their own. The contract that makes
// the two tiers interchangeable is pop-order equivalence: head, popHead
// and topN must return exactly what a single entryHeap over the same
// entry set would — the invariance tests compare the tiers bit for bit.
type shardStore interface {
	// size returns the number of stored entries.
	size() int
	// contains reports whether url is stored.
	contains(url string) bool
	// put inserts or reschedules e.
	put(e Entry)
	// remove deletes url, reporting whether it was present.
	remove(url string) bool
	// head returns the first entry in pop order without removing it.
	head() (Entry, bool)
	// popHead removes and returns the first entry in pop order. It must
	// only be called when head reported ok.
	popHead() Entry
	// topN returns the first n entries in pop order without mutating
	// the store.
	topN(n int) []Entry
	// each calls fn for every stored entry, in a deterministic order of
	// the implementation's choosing, stopping at the first error.
	each(fn func(Entry) error) error
	// reset drops every entry (and, for a disk tier, truncates its log).
	reset()
	// close releases any resources backing the store.
	close() error
	// tier reports the store's residency split for observability.
	tier() TierStats
}

// TierStats is a frontier store's residency split: how many entries are
// materialized in RAM, how many live only in the spill log, and how
// many log bytes the spill occupies (0/0 bytes for the pure in-memory
// tier).
type TierStats struct {
	Resident   int
	Spilled    int
	SpillBytes int64
}

func (t TierStats) add(o TierStats) TierStats {
	return TierStats{
		Resident:   t.Resident + o.Resident,
		Spilled:    t.Spilled + o.Spilled,
		SpillBytes: t.SpillBytes + o.SpillBytes,
	}
}

// StoreConfig configures a sharded frontier's storage tier for
// OpenSharded.
type StoreConfig struct {
	// Shards is the per-site shard count (minimum 1).
	Shards int
	// Politeness is the per-shard politeness gap (see NewShardedPolite).
	Politeness float64
	// SpillDir, when non-empty, selects the disk-backed tier: each
	// shard appends its entries to a record log under this directory
	// and keeps only a fingerprint index plus the due-soon head in RAM.
	// Empty selects the in-memory tier.
	SpillDir string
	// ResidentBudget caps (approximately — see the package notes on tie
	// groups) the number of entries the disk tier materializes in RAM
	// across all shards. Zero or negative applies DefaultResidentBudget.
	ResidentBudget int
}

// DefaultResidentBudget is the disk tier's resident-entry cap when the
// config leaves it unset.
const DefaultResidentBudget = 1 << 16

// memQueue is the heap+map priority queue that stores a shard's
// entries: the in-memory tier uses it directly, and the disk tier uses
// one as the resident head of its log. Pop order is Due ascending, then
// Priority descending, then URL — entryHeap's order.
type memQueue struct {
	h     entryHeap
	byURL map[string]*Entry
}

func newMemQueue() *memQueue { return &memQueue{byURL: make(map[string]*Entry)} }

func (m *memQueue) size() int { return len(m.h) }

func (m *memQueue) contains(url string) bool {
	_, ok := m.byURL[url]
	return ok
}

func (m *memQueue) put(e Entry) {
	if old, ok := m.byURL[e.URL]; ok {
		old.Due = e.Due
		old.Priority = e.Priority
		heap.Fix(&m.h, old.index)
		return
	}
	ne := &Entry{URL: e.URL, Due: e.Due, Priority: e.Priority}
	heap.Push(&m.h, ne)
	m.byURL[e.URL] = ne
}

func (m *memQueue) remove(url string) bool {
	e, ok := m.byURL[url]
	if !ok {
		return false
	}
	heap.Remove(&m.h, e.index)
	delete(m.byURL, url)
	return true
}

func (m *memQueue) head() (Entry, bool) {
	if len(m.h) == 0 {
		return Entry{}, false
	}
	return *m.h[0], true
}

func (m *memQueue) popHead() Entry {
	e := heap.Pop(&m.h).(*Entry)
	delete(m.byURL, e.URL)
	return *e
}

// topN returns the queue's first n entries in pop order without
// mutating the heap: a best-first walk over the heap array driven by a
// small index heap (O(n log n), no per-entry allocation beyond the
// result).
func (m *memQueue) topN(n int) []Entry {
	if n <= 0 || len(m.h) == 0 {
		return nil
	}
	if n > len(m.h) {
		n = len(m.h)
	}
	// idxs is a min-heap of positions into m.h, ordered by the entry
	// comparator; the heap-array children of a popped position are the
	// only new candidates for the next-smallest entry.
	idxs := make([]int, 1, 2*n+1)
	idxs[0] = 0
	less := func(a, b int) bool { return m.h.Less(idxs[a], idxs[b]) }
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			sm := i
			if l < len(idxs) && less(l, sm) {
				sm = l
			}
			if r < len(idxs) && less(r, sm) {
				sm = r
			}
			if sm == i {
				return
			}
			idxs[i], idxs[sm] = idxs[sm], idxs[i]
			i = sm
		}
	}
	up := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !less(i, p) {
				return
			}
			idxs[i], idxs[p] = idxs[p], idxs[i]
			i = p
		}
	}
	out := make([]Entry, 0, n)
	for len(out) < n && len(idxs) > 0 {
		head := idxs[0]
		ent := *m.h[head]
		ent.index = 0 // the heap position is meaningless in a copy
		out = append(out, ent)
		last := len(idxs) - 1
		idxs[0] = idxs[last]
		idxs = idxs[:last]
		down(0)
		if l := 2*head + 1; l < len(m.h) {
			idxs = append(idxs, l)
			up(len(idxs) - 1)
		}
		if r := 2*head + 2; r < len(m.h) {
			idxs = append(idxs, r)
			up(len(idxs) - 1)
		}
	}
	return out
}

// each visits every entry in heap-array order — deterministic for a
// given operation history, which is all the callers need (they either
// sort afterwards or don't care).
func (m *memQueue) each(fn func(Entry) error) error {
	for _, e := range m.h {
		if err := fn(*e); err != nil {
			return err
		}
	}
	return nil
}

func (m *memQueue) reset() {
	m.h = nil
	m.byURL = make(map[string]*Entry)
}

// memStore is the default, fully in-memory shard store: a memQueue and
// nothing else. Zero behavior change from the pre-tier frontier.
type memStore struct{ memQueue }

func newMemStore() *memStore { return &memStore{memQueue{byURL: make(map[string]*Entry)}} }

func (m *memStore) close() error { return nil }

func (m *memStore) tier() TierStats { return TierStats{Resident: m.size()} }
