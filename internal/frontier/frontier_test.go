package frontier

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestAllUrlsAdd(t *testing.T) {
	a := NewAllUrls()
	if !a.Add("http://x.com/", 1) {
		t.Fatal("first add not new")
	}
	if a.Add("http://x.com/", 2) {
		t.Fatal("second add reported new")
	}
	info, ok := a.Get("http://x.com/")
	if !ok || info.FirstSeen != 1 {
		t.Fatalf("info %+v ok=%v", info, ok)
	}
	if a.Len() != 1 {
		t.Fatalf("len %d", a.Len())
	}
}

func TestAllUrlsAddLinkCountsDistinctSources(t *testing.T) {
	a := NewAllUrls()
	a.AddLink("http://s1.com/", "http://t.com/", 0)
	a.AddLink("http://s1.com/", "http://t.com/", 1) // duplicate pair
	a.AddLink("http://s2.com/", "http://t.com/", 2)
	info, ok := a.Get("http://t.com/")
	if !ok || info.InLinks != 2 {
		t.Fatalf("in-links %d, want 2", info.InLinks)
	}
	if info.FirstSeen != 0 {
		t.Fatalf("first seen %v", info.FirstSeen)
	}
}

func TestAllUrlsImportanceAndMembership(t *testing.T) {
	a := NewAllUrls()
	a.SetImportance("http://new.com/", 0.7) // creates the record
	info, ok := a.Get("http://new.com/")
	if !ok || info.Importance != 0.7 {
		t.Fatalf("importance %+v", info)
	}
	a.SetInCollection("http://new.com/", true)
	info, _ = a.Get("http://new.com/")
	if !info.InCollection {
		t.Fatal("membership flag lost")
	}
}

func TestAllUrlsScanSortedAndStoppable(t *testing.T) {
	a := NewAllUrls()
	for _, u := range []string{"http://c.com/", "http://a.com/", "http://b.com/"} {
		a.Add(u, 0)
	}
	var seen []string
	a.Scan(func(i URLInfo) bool {
		seen = append(seen, i.URL)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != "http://a.com/" || seen[1] != "http://b.com/" {
		t.Fatalf("scan %v", seen)
	}
}

func TestCandidatesExcludesCollectionAndSorts(t *testing.T) {
	a := NewAllUrls()
	a.Add("http://in.com/", 0)
	a.SetInCollection("http://in.com/", true)
	a.SetImportance("http://in.com/", 99)
	a.SetImportance("http://hi.com/", 3)
	a.SetImportance("http://lo.com/", 1)
	a.SetImportance("http://mid.com/", 2)
	c := a.Candidates(2)
	if len(c) != 2 || c[0].URL != "http://hi.com/" || c[1].URL != "http://mid.com/" {
		t.Fatalf("candidates %v", c)
	}
}

func TestCollUrlsPopOrder(t *testing.T) {
	q := NewCollUrls()
	q.Push("http://b.com/", 5, 0)
	q.Push("http://a.com/", 1, 0)
	q.Push("http://c.com/", 3, 0)
	var order []string
	for q.Len() > 0 {
		e, err := q.Pop()
		if err != nil {
			t.Fatal(err)
		}
		order = append(order, e.URL)
	}
	want := []string{"http://a.com/", "http://c.com/", "http://b.com/"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v", order)
		}
	}
}

func TestCollUrlsTieBreaks(t *testing.T) {
	q := NewCollUrls()
	q.Push("http://low.com/", 1, 0.1)
	q.Push("http://high.com/", 1, 0.9)
	e, _ := q.Pop()
	if e.URL != "http://high.com/" {
		t.Fatalf("priority tie-break failed: %v", e.URL)
	}
	// Equal due and priority: lexicographic.
	q = NewCollUrls()
	q.Push("http://b.com/", 2, 0)
	q.Push("http://a.com/", 2, 0)
	e, _ = q.Pop()
	if e.URL != "http://a.com/" {
		t.Fatalf("URL tie-break failed: %v", e.URL)
	}
}

func TestCollUrlsPushReschedules(t *testing.T) {
	q := NewCollUrls()
	q.Push("http://x.com/", 10, 0)
	q.Push("http://x.com/", 1, 0.5) // reschedule earlier
	if q.Len() != 1 {
		t.Fatalf("len %d after reschedule", q.Len())
	}
	e, _ := q.Pop()
	if e.Due != 1 || e.Priority != 0.5 {
		t.Fatalf("entry %+v", e)
	}
}

func TestCollUrlsPopDue(t *testing.T) {
	q := NewCollUrls()
	q.Push("http://later.com/", 10, 0)
	if _, ok := q.PopDue(5); ok {
		t.Fatal("future entry popped")
	}
	q.Push("http://now.com/", 2, 0)
	e, ok := q.PopDue(5)
	if !ok || e.URL != "http://now.com/" {
		t.Fatalf("due pop %+v ok=%v", e, ok)
	}
	if q.Len() != 1 {
		t.Fatalf("len %d", q.Len())
	}
}

func TestCollUrlsPeekAndRemove(t *testing.T) {
	q := NewCollUrls()
	if _, ok := q.Peek(); ok {
		t.Fatal("peek on empty succeeded")
	}
	q.Push("http://a.com/", 1, 0)
	q.Push("http://b.com/", 2, 0)
	e, ok := q.Peek()
	if !ok || e.URL != "http://a.com/" || q.Len() != 2 {
		t.Fatalf("peek %+v", e)
	}
	if !q.Remove("http://a.com/") {
		t.Fatal("remove failed")
	}
	if q.Remove("http://a.com/") {
		t.Fatal("double remove succeeded")
	}
	if q.Contains("http://a.com/") {
		t.Fatal("removed URL still contained")
	}
	e, _ = q.Pop()
	if e.URL != "http://b.com/" {
		t.Fatalf("heap broken after remove: %+v", e)
	}
}

func TestCollUrlsPopEmpty(t *testing.T) {
	q := NewCollUrls()
	if _, err := q.Pop(); err != ErrEmpty {
		t.Fatalf("pop empty: %v", err)
	}
}

func TestCollUrlsURLsSorted(t *testing.T) {
	q := NewCollUrls()
	q.Push("http://z.com/", 1, 0)
	q.Push("http://a.com/", 9, 0)
	urls := q.URLs()
	if len(urls) != 2 || urls[0] != "http://a.com/" {
		t.Fatalf("URLs %v", urls)
	}
}

// TestHeapProperty: random pushes pop in nondecreasing due order.
func TestHeapProperty(t *testing.T) {
	if err := quick.Check(func(dues []float64) bool {
		q := NewCollUrls()
		for i, d := range dues {
			if math.IsNaN(d) {
				d = 0
			}
			q.Push(urlFor(i), d, 0)
		}
		var popped []float64
		for q.Len() > 0 {
			e, err := q.Pop()
			if err != nil {
				return false
			}
			popped = append(popped, e.Due)
		}
		return sort.Float64sAreSorted(popped)
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func urlFor(i int) string {
	return "http://site.com/p" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}
