package frontier

import (
	"fmt"
	"runtime"
	"strconv"
	"testing"
)

// BenchmarkFrontierScale pushes crawl-scale URL volumes through a
// disk-backed queue under a 100k resident budget, then runs a
// claim/reschedule/release mix over the due head — the shape of a real
// incremental crawl round. It reports the tentpole's two numbers:
// resident_entries (the in-RAM peak, which must stay under budget no
// matter the frontier size) and rss_proxy_bytes (heap growth — the
// fingerprint index and spill heap, the per-entry cost that remains
// after the full entries spill). spill_bytes is the on-disk log size.
func BenchmarkFrontierScale(b *testing.B) {
	for _, size := range []int{1_000_000, 10_000_000} {
		b.Run(fmt.Sprintf("%dM", size/1_000_000), func(b *testing.B) {
			if size > 1_000_000 && testing.Short() {
				b.Skip("10M case takes over a minute; run without -short")
			}
			benchFrontierScale(b, size)
		})
	}
}

func benchFrontierScale(b *testing.B, n int) {
	const budget = 100_000
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		runtime.GC()
		var m0 runtime.MemStats
		runtime.ReadMemStats(&m0)
		b.StartTimer()

		q, err := OpenSharded(StoreConfig{
			Shards: 64, SpillDir: b.TempDir(), ResidentBudget: budget,
		})
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, 0, 64)
		url := func(i int) string {
			buf = append(buf[:0], "http://site"...)
			buf = strconv.AppendInt(buf, int64(i%100_000), 10)
			buf = append(buf, ".com/p"...)
			buf = strconv.AppendInt(buf, int64(i), 10)
			return string(buf)
		}
		for j := 0; j < n; j++ {
			q.Push(url(j), float64(j%1024)+float64(j)*1e-9, float64(j%3))
		}
		maxResident := q.Tier().Resident

		// The crawl mix: claim the due head, fetch (elided), reschedule
		// it past the horizon, release the site shard.
		const now = 2000.0
		for j := 0; j < n/100; j++ {
			e, sid, ok := q.ClaimDue(now)
			if !ok {
				b.Fatal("queue unexpectedly empty")
			}
			q.Push(e.URL, e.Due+3000, e.Priority)
			q.Release(sid, 0)
			if j%1024 == 0 {
				if r := q.Tier().Resident; r > maxResident {
					maxResident = r
				}
			}
		}
		if r := q.Tier().Resident; r > maxResident {
			maxResident = r
		}
		if maxResident > budget {
			b.Fatalf("resident entries peaked at %d, budget %d", maxResident, budget)
		}
		ts := q.Tier()

		runtime.GC()
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		b.ReportMetric(float64(maxResident), "resident_entries")
		b.ReportMetric(float64(ts.SpillBytes), "spill_bytes")
		b.ReportMetric(float64(m1.HeapAlloc)-float64(m0.HeapAlloc), "rss_proxy_bytes")
		if err := q.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
