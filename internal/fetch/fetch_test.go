package fetch

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"webevolve/internal/clock"
	"webevolve/internal/robots"
	"webevolve/internal/simweb"
)

func simFetcher(t *testing.T) *SimFetcher {
	t.Helper()
	w, err := simweb.New(simweb.SmallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	return NewSimFetcher(w)
}

func TestSimFetcherFetch(t *testing.T) {
	f := simFetcher(t)
	root := f.Web().Sites()[0].RootURL()
	res, err := f.Fetch(root, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.NotFound || res.Checksum == 0 || len(res.Links) == 0 {
		t.Fatalf("bad result %+v", res)
	}
	if res.Content != nil {
		t.Fatal("content returned without WithContent")
	}
	if res.Size <= 0 {
		t.Fatal("size not approximated")
	}
	if f.Fetches() != 1 {
		t.Fatalf("fetch count %d", f.Fetches())
	}
}

// TestSimFetcherConcurrentSites drives many workers fetching disjoint
// sites in parallel with monotone per-site days — the access pattern
// the crawl engines guarantee via shard affinity. With the per-site
// lock striping this runs race-free without one global mutex, and each
// page's observed state stays deterministic.
func TestSimFetcherConcurrentSites(t *testing.T) {
	w, err := simweb.New(simweb.Config{
		Seed: 9,
		SitesPerDomain: map[simweb.Domain]int{
			simweb.Com: 4, simweb.Edu: 2, simweb.NetOrg: 1, simweb.Gov: 1,
		},
		PagesPerSite: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := NewSimFetcher(w)
	sites := w.Sites()
	type obs struct {
		url string
		day float64
		sum uint64
	}
	results := make([][]obs, len(sites))
	done := make(chan int, len(sites))
	for i, s := range sites {
		go func(i int, root string) {
			for day := 0.0; day < 20; day++ {
				res, err := f.Fetch(root, day)
				if err == nil && !res.NotFound {
					results[i] = append(results[i], obs{root, day, res.Checksum})
				}
			}
			done <- i
		}(i, s.RootURL())
	}
	for range sites {
		<-done
	}
	// Replay against a fresh identical web: concurrent per-site access
	// must have observed exactly the sequential evolution.
	w2, err := simweb.New(simweb.Config{
		Seed: 9,
		SitesPerDomain: map[simweb.Domain]int{
			simweb.Com: 4, simweb.Edu: 2, simweb.NetOrg: 1, simweb.Gov: 1,
		},
		PagesPerSite: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	f2 := NewSimFetcher(w2)
	for i := range results {
		for _, o := range results[i] {
			res, err := f2.Fetch(o.url, o.day)
			if err != nil {
				t.Fatal(err)
			}
			if res.Checksum != o.sum {
				t.Fatalf("site %d day %v: checksum %x, sequential replay %x",
					i, o.day, o.sum, res.Checksum)
			}
		}
	}
}

// TestSimFetcherUnknownHostConcurrent covers the shared fallback lock.
func TestSimFetcherUnknownHostConcurrent(t *testing.T) {
	f := simFetcher(t)
	done := make(chan struct{}, 8)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 50; j++ {
				res, err := f.Fetch("http://nowhere.invalid/x", float64(j))
				if err != nil || !res.NotFound {
					t.Errorf("unknown host: %+v, %v", res, err)
					break
				}
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}

func TestSimFetcherWithContent(t *testing.T) {
	f := simFetcher(t)
	f.WithContent = true
	root := f.Web().Sites()[0].RootURL()
	res, err := f.Fetch(root, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Content) == 0 || res.Size != len(res.Content) {
		t.Fatalf("content missing: size=%d len=%d", res.Size, len(res.Content))
	}
	if !strings.Contains(string(res.Content), "<html>") {
		t.Fatal("content not HTML")
	}
}

func TestSimFetcherNotFound(t *testing.T) {
	f := simFetcher(t)
	res, err := f.Fetch("http://site000.com/p99999", 0)
	if err != nil {
		t.Fatalf("missing page should not error: %v", err)
	}
	if !res.NotFound {
		t.Fatal("missing page not flagged")
	}
	if f.NotFoundCount() != 1 {
		t.Fatalf("not-found count %d", f.NotFoundCount())
	}
}

func TestChecksum64Distinguishes(t *testing.T) {
	a := Checksum64([]byte("hello"))
	b := Checksum64([]byte("hello!"))
	if a == b {
		t.Fatal("checksum collision on trivially different inputs")
	}
	if a != Checksum64([]byte("hello")) {
		t.Fatal("checksum not deterministic")
	}
}

// --- HTTPFetcher tests against httptest servers ---

func TestHTTPFetcherBasic(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/robots.txt" {
			w.WriteHeader(404)
			return
		}
		hits.Add(1)
		w.Header().Set("Content-Type", "text/html")
		_, _ = w.Write([]byte(`<html><a href="/next">n</a></html>`))
	}))
	defer srv.Close()

	f := &HTTPFetcher{Politeness: robots.Politeness{}}
	res, err := f.Fetch(srv.URL+"/page", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.NotFound || res.Checksum == 0 {
		t.Fatalf("result %+v", res)
	}
	if len(res.Links) != 1 || res.Links[0] != srv.URL+"/next" {
		t.Fatalf("links %v", res.Links)
	}
	if hits.Load() != 1 {
		t.Fatalf("server hits %d", hits.Load())
	}
}

func TestHTTPFetcherNotFound(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(404)
	}))
	defer srv.Close()
	f := &HTTPFetcher{SkipRobots: true}
	res, err := f.Fetch(srv.URL+"/gone", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.NotFound {
		t.Fatal("404 not flagged")
	}
}

func TestHTTPFetcherServerErrorIsError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(500)
	}))
	defer srv.Close()
	f := &HTTPFetcher{SkipRobots: true}
	if _, err := f.Fetch(srv.URL+"/boom", 0); err == nil {
		t.Fatal("500 did not error")
	}
}

func TestHTTPFetcherHonoursRobots(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/robots.txt":
			_, _ = w.Write([]byte("User-agent: *\nDisallow: /private\n"))
		default:
			_, _ = w.Write([]byte("content"))
		}
	}))
	defer srv.Close()
	f := &HTTPFetcher{}
	res, err := f.Fetch(srv.URL+"/private/x", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.NotFound {
		t.Fatal("disallowed path fetched")
	}
	res, err = f.Fetch(srv.URL+"/public", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.NotFound {
		t.Fatal("allowed path blocked")
	}
}

func TestHTTPFetcherPolitenessSpacing(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("x"))
	}))
	defer srv.Close()
	vc := clock.NewVirtual(time.Date(1999, 3, 1, 22, 0, 0, 0, time.UTC))
	f := &HTTPFetcher{
		SkipRobots: true,
		Clock:      vc,
		Politeness: robots.Politeness{MinDelay: 10 * time.Second},
		Epoch:      vc.Now(),
	}
	if _, err := f.Fetch(srv.URL+"/1", 0); err != nil {
		t.Fatal(err)
	}
	before := vc.Now()
	if _, err := f.Fetch(srv.URL+"/2", 0); err != nil {
		t.Fatal(err)
	}
	if got := vc.Now().Sub(before); got < 10*time.Second {
		t.Fatalf("second request spaced only %v", got)
	}
}

func TestHTTPFetcherDayAnchoredToEpoch(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("x"))
	}))
	defer srv.Close()
	epoch := time.Date(1999, 2, 17, 0, 0, 0, 0, time.UTC)
	vc := clock.NewVirtual(epoch.Add(48 * time.Hour))
	f := &HTTPFetcher{SkipRobots: true, Clock: vc, Epoch: epoch}
	res, err := f.Fetch(srv.URL+"/x", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Day < 1.99 || res.Day > 2.01 {
		t.Fatalf("day %v, want ~2", res.Day)
	}
}

func TestHTTPFetcherBodyLimit(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write(make([]byte, 1<<20))
	}))
	defer srv.Close()
	f := &HTTPFetcher{SkipRobots: true, MaxBodyBytes: 1024}
	res, err := f.Fetch(srv.URL+"/big", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != 1024 {
		t.Fatalf("size %d, want capped 1024", res.Size)
	}
}

func TestHTTPFetcherBadURL(t *testing.T) {
	f := &HTTPFetcher{SkipRobots: true}
	if _, err := f.Fetch("http://bad url with spaces/", 0); err == nil {
		t.Fatal("bad URL accepted")
	}
}

func TestHTTPFetcherRobotsCached(t *testing.T) {
	var robotHits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/robots.txt" {
			robotHits.Add(1)
			_, _ = w.Write([]byte(""))
			return
		}
		_, _ = w.Write([]byte("x"))
	}))
	defer srv.Close()
	f := &HTTPFetcher{}
	for i := 0; i < 3; i++ {
		if _, err := f.Fetch(srv.URL+"/p", 0); err != nil {
			t.Fatal(err)
		}
	}
	if robotHits.Load() != 1 {
		t.Fatalf("robots.txt fetched %d times", robotHits.Load())
	}
}

func TestHTTPFetcherSkipsLinkExtractionForNonHTML(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/pdf")
		_, _ = w.Write([]byte(`<a href="http://x.com/">x</a>`))
	}))
	defer srv.Close()
	f := &HTTPFetcher{SkipRobots: true}
	res, err := f.Fetch(srv.URL+"/doc.pdf", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Links) != 0 {
		t.Fatalf("links extracted from PDF: %v", res.Links)
	}
}
