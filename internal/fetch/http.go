package fetch

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"webevolve/internal/clock"
	"webevolve/internal/htmlparse"
	"webevolve/internal/robots"
)

// HTTPFetcher is a polite live-web fetcher: it honours robots.txt, spaces
// requests to one host by the politeness delay (the paper's experiment
// used 10 seconds) and optionally restricts crawling to a night window.
type HTTPFetcher struct {
	// Client is the underlying HTTP client; http.DefaultClient when nil.
	Client *http.Client
	// UserAgent identifies the crawler; a default is used when empty.
	UserAgent string
	// Politeness is the per-site access policy.
	Politeness robots.Politeness
	// Clock provides time (and allows virtual-time tests). Wall clock
	// when nil.
	Clock clock.Clock
	// Epoch anchors Result.Day: day 0 is this instant. Set once before
	// first use; defaults to the first fetch's time.
	Epoch time.Time
	// MaxBodyBytes caps how much of a response body is read (default
	// 2 MiB).
	MaxBodyBytes int64
	// SkipRobots disables robots.txt checking (tests).
	SkipRobots bool

	mu        sync.Mutex
	lastByKey map[string]time.Time
	robotsBy  map[string]*robots.Rules
	epochSet  bool
}

const defaultUserAgent = "webevolve-crawler/1.0 (research reproduction)"

func (f *HTTPFetcher) clock() clock.Clock {
	if f.Clock != nil {
		return f.Clock
	}
	return clock.Wall{}
}

func (f *HTTPFetcher) client() *http.Client {
	if f.Client != nil {
		return f.Client
	}
	return http.DefaultClient
}

func (f *HTTPFetcher) userAgent() string {
	if f.UserAgent != "" {
		return f.UserAgent
	}
	return defaultUserAgent
}

// Fetch implements Fetcher. The day argument is ignored: live time comes
// from the fetcher's clock.
func (f *HTTPFetcher) Fetch(rawURL string, _ float64) (Result, error) {
	return f.FetchContext(context.Background(), rawURL)
}

// FetchContext fetches with a context.
func (f *HTTPFetcher) FetchContext(ctx context.Context, rawURL string) (Result, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return Result{}, fmt.Errorf("fetch: bad url %q: %w", rawURL, err)
	}
	now := f.waitTurn(u.Host)
	f.mu.Lock()
	if !f.epochSet {
		if f.Epoch.IsZero() {
			f.Epoch = now
		}
		f.epochSet = true
	}
	epoch := f.Epoch
	f.mu.Unlock()

	if !f.SkipRobots {
		ok, err := f.allowed(ctx, u)
		if err != nil {
			return Result{}, err
		}
		if !ok {
			return Result{URL: rawURL, Day: clock.Days(now.Sub(epoch)), NotFound: true}, nil
		}
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rawURL, nil)
	if err != nil {
		return Result{}, fmt.Errorf("fetch: %w", err)
	}
	req.Header.Set("User-Agent", f.userAgent())
	resp, err := f.client().Do(req)
	if err != nil {
		return Result{}, fmt.Errorf("fetch: %w", err)
	}
	defer resp.Body.Close()

	day := clock.Days(now.Sub(epoch))
	if resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusGone {
		return Result{URL: rawURL, Day: day, NotFound: true}, nil
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return Result{}, fmt.Errorf("fetch: %s: status %d", rawURL, resp.StatusCode)
	}
	limit := f.MaxBodyBytes
	if limit <= 0 {
		limit = 2 << 20
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, limit))
	if err != nil {
		return Result{}, fmt.Errorf("fetch: reading %s: %w", rawURL, err)
	}
	res := Result{
		URL:      rawURL,
		Day:      day,
		Checksum: Checksum64(body),
		Content:  body,
		Size:     len(body),
	}
	ct := resp.Header.Get("Content-Type")
	if ct == "" || strings.Contains(ct, "html") {
		res.Links = htmlparse.Links(rawURL, string(body))
	}
	return res, nil
}

// waitTurn blocks until the politeness policy admits a request to host,
// then records the request time and returns it.
func (f *HTTPFetcher) waitTurn(host string) time.Time {
	c := f.clock()
	f.mu.Lock()
	if f.lastByKey == nil {
		f.lastByKey = make(map[string]time.Time)
	}
	last := f.lastByKey[host]
	now := c.Now()
	next := f.Politeness.NextAllowed(now, last)
	f.lastByKey[host] = next
	f.mu.Unlock()
	if d := next.Sub(now); d > 0 {
		c.Sleep(d)
	}
	return next
}

// allowed consults (and caches) robots.txt for the URL's host.
func (f *HTTPFetcher) allowed(ctx context.Context, u *url.URL) (bool, error) {
	f.mu.Lock()
	if f.robotsBy == nil {
		f.robotsBy = make(map[string]*robots.Rules)
	}
	rules, ok := f.robotsBy[u.Host]
	f.mu.Unlock()
	if !ok {
		robotsURL := u.Scheme + "://" + u.Host + "/robots.txt"
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, robotsURL, nil)
		if err != nil {
			return false, fmt.Errorf("fetch: %w", err)
		}
		req.Header.Set("User-Agent", f.userAgent())
		resp, err := f.client().Do(req)
		if err != nil {
			// Unreachable robots.txt: be conservative but do not wedge the
			// crawl; treat as allow-all, the common convention.
			rules = robots.Parse("", f.userAgent())
		} else {
			func() {
				defer resp.Body.Close()
				if resp.StatusCode >= 200 && resp.StatusCode < 300 {
					body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
					rules = robots.Parse(string(body), f.userAgent())
				} else {
					rules = robots.Parse("", f.userAgent())
				}
			}()
		}
		f.mu.Lock()
		f.robotsBy[u.Host] = rules
		f.mu.Unlock()
	}
	return rules.Allowed(u.Path), nil
}
