package fetch

import "time"

// Delayed wraps a Fetcher with a fixed per-request latency, emulating
// the network round-trip that dominates real crawls. Simulated-web
// fetches complete in microseconds, which hides the benefit of parallel
// CrawlModules; a Delayed fetcher restores the latency-bound regime the
// paper's throughput argument lives in (their example: sustaining 40
// pages/second against multi-second page latencies), so worker-scaling
// benchmarks measure something representative.
//
// The delay is served outside any lock, so concurrent fetches overlap
// their waits exactly like concurrent HTTP requests do.
type Delayed struct {
	Base  Fetcher
	Delay time.Duration
}

// Fetch implements Fetcher.
func (d Delayed) Fetch(url string, day float64) (Result, error) {
	if d.Delay > 0 {
		time.Sleep(d.Delay)
	}
	return d.Base.Fetch(url, day)
}
