// Package fetch abstracts page retrieval behind one interface with two
// implementations: SimFetcher reads the deterministic synthetic web
// (every experiment in this repository runs on it), and HTTPFetcher is a
// real polite HTTP client so the same crawler code can run against live
// sites. The CrawlModule of Figure 12 is a consumer of this package.
package fetch

import (
	"errors"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"webevolve/internal/simweb"
	"webevolve/internal/webgraph"
)

// Result is the outcome of one fetch.
type Result struct {
	URL string
	// Day is the fetch time in days since the crawl epoch.
	Day float64
	// NotFound reports a 404/410 or a vanished simulated page; the other
	// fields are zero when set. A missing page is a normal crawl outcome,
	// not an error.
	NotFound bool
	// Checksum is the content checksum used for change detection.
	Checksum uint64
	// Version is the content version for simulated pages (oracle-free
	// crawlers ignore it; tests use it).
	Version int
	// Links are the absolute out-link URLs extracted from the content.
	Links []string
	// Content is the page body when content fetching is enabled.
	Content []byte
	// Size is the content size in bytes (set even when Content is nil).
	Size int
}

// Fetcher retrieves pages. Implementations must be safe for concurrent
// use: the paper notes "multiple CrawlModules may run in parallel".
type Fetcher interface {
	// Fetch retrieves url at the given crawl-time (days since epoch).
	// Simulated fetchers use day as the virtual instant; live fetchers
	// may ignore it.
	Fetch(url string, day float64) (Result, error)
}

// Checksum64 hashes content for change detection.
func Checksum64(b []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(b)
	return h.Sum64()
}

// SimFetcher serves fetches from a simulated web.
type SimFetcher struct {
	web *simweb.Web
	// WithContent controls whether HTML bodies are rendered; experiments
	// that need only checksums leave it false for speed.
	WithContent bool

	fetches  atomic.Int64
	notFound atomic.Int64

	// locks serializes fetches per site: simweb advances page state
	// lazily on fetch, which mutates only the fetched site (cross-site
	// reads touch nothing but immutable fields), so one lock per site
	// lets zero-latency simulated crawls scale with workers instead of
	// funnelling every site through a single mutex. The crawl engines
	// already keep same-site fetches on one worker (shard affinity /
	// shard claims), so per-site contention is the rare case, not the
	// common one.
	locks map[string]*sync.Mutex
	// unknown serializes fetches of hosts outside the web (no site
	// state is advanced, but the lookup result must not race a future
	// simweb mutation; one shared lock keeps the invariant cheap).
	unknown sync.Mutex
}

// NewSimFetcher wraps a simulated web.
func NewSimFetcher(w *simweb.Web) *SimFetcher {
	locks := make(map[string]*sync.Mutex)
	for _, s := range w.Sites() {
		locks[s.Host()] = &sync.Mutex{}
	}
	return &SimFetcher{web: w, locks: locks}
}

// lockFor returns the mutex guarding url's site.
func (f *SimFetcher) lockFor(url string) *sync.Mutex {
	if mu, ok := f.locks[webgraph.SiteOf(url)]; ok {
		return mu
	}
	return &f.unknown
}

// Fetch implements Fetcher.
func (f *SimFetcher) Fetch(url string, day float64) (Result, error) {
	mu := f.lockFor(url)
	mu.Lock()
	var snap simweb.Snapshot
	var err error
	if f.WithContent {
		snap, err = f.web.Fetch(url, day)
	} else {
		snap, err = f.web.FetchMeta(url, day)
	}
	mu.Unlock()
	f.fetches.Add(1)
	if err != nil {
		if errors.Is(err, simweb.ErrNotFound) {
			f.notFound.Add(1)
			return Result{URL: url, Day: day, NotFound: true}, nil
		}
		return Result{}, err
	}
	res := Result{
		URL:      url,
		Day:      day,
		Checksum: snap.Checksum,
		Version:  snap.Version,
		Links:    snap.Links,
		Size:     snap.Size,
	}
	if f.WithContent {
		res.Content = []byte(snap.HTML)
	}
	return res, nil
}

// Fetches returns the total fetch count (including not-found).
func (f *SimFetcher) Fetches() int64 { return f.fetches.Load() }

// NotFoundCount returns how many fetches hit missing pages.
func (f *SimFetcher) NotFoundCount() int64 { return f.notFound.Load() }

// Web exposes the underlying simulated web (oracle access for tests).
func (f *SimFetcher) Web() *simweb.Web { return f.web }
