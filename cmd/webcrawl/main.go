// Command webcrawl is a small production-style incremental crawler over
// real HTTP: seed URLs, polite fetching (robots.txt, per-host delay,
// optional night window), a disk-backed collection that survives
// restarts, checksum change detection, and EP-based revisit estimates.
//
// It is the live-web counterpart of the simulated experiments: the same
// frontier, store and estimator code paths, driven by wall-clock time.
//
// Usage:
//
//	webcrawl -seeds https://example.com/ -dir ./crawl -pages 50
//	webcrawl -seeds https://a.com/,https://b.org/ -delay 10s -night
//
// The crawler runs one pass over all due URLs and exits; re-running
// continues incrementally from the stored state (compare timestamps and
// checksums across runs to watch change detection at work).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"webevolve/internal/changefreq"
	"webevolve/internal/clock"
	"webevolve/internal/fetch"
	"webevolve/internal/frontier"
	"webevolve/internal/htmlparse"
	"webevolve/internal/robots"
	"webevolve/internal/store"
)

func main() {
	seeds := flag.String("seeds", "", "comma-separated seed URLs (required)")
	dir := flag.String("dir", "crawl-data", "directory for the persistent collection")
	maxPages := flag.Int("pages", 25, "maximum pages to fetch this run")
	delay := flag.Duration("delay", 10*time.Second, "minimum delay between requests to one host")
	night := flag.Bool("night", false, "crawl only 9PM-6AM local time (the paper's window)")
	sameSite := flag.Bool("samesite", true, "follow links only within seed hosts")
	agent := flag.String("agent", "", "override User-Agent")
	flag.Parse()

	if *seeds == "" {
		fmt.Fprintln(os.Stderr, "webcrawl: -seeds is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(strings.Split(*seeds, ","), *dir, *maxPages, *delay, *night, *sameSite, *agent); err != nil {
		fmt.Fprintln(os.Stderr, "webcrawl:", err)
		os.Exit(1)
	}
}

// state is the persisted frontier/estimator sidecar next to the page
// store.
type state struct {
	// Epoch anchors fractional-day timestamps.
	Epoch time.Time `json:"epoch"`
	// Histories maps URL -> (visit day, changed?) pairs.
	Histories map[string][]obs `json:"histories"`
	// Due maps URL -> next scheduled visit day.
	Due map[string]float64 `json:"due"`
}

type obs struct {
	Day     float64 `json:"day"`
	Changed bool    `json:"changed"`
}

func run(seeds []string, dir string, maxPages int, delay time.Duration, night, sameSite bool, agent string) error {
	coll, err := store.OpenDisk(filepath.Join(dir, "pages"))
	if err != nil {
		return err
	}
	defer coll.Close()
	st, err := loadState(filepath.Join(dir, "state.json"))
	if err != nil {
		return err
	}

	pol := robots.Politeness{MinDelay: delay}
	if night {
		pol.NightOnly, pol.NightStart, pol.NightEnd = true, 21, 6
	}
	f := &fetch.HTTPFetcher{Politeness: pol, Epoch: st.Epoch, UserAgent: agent}

	// Rebuild the revisit queue: stored pages at their due times, seeds
	// and never-crawled discoveries immediately.
	q := frontier.NewCollUrls()
	nowDay := clock.Days(time.Since(st.Epoch))
	for url, due := range st.Due {
		q.Push(url, due, 0)
	}
	for _, s := range seeds {
		s = htmlparse.Normalize(strings.TrimSpace(s))
		if !q.Contains(s) {
			q.Push(s, nowDay, 1)
		}
	}

	seedHosts := make(map[string]bool)
	for _, s := range seeds {
		if u := htmlparse.Normalize(strings.TrimSpace(s)); u != "" {
			seedHosts[hostOf(u)] = true
		}
	}

	fetched := 0
	for fetched < maxPages {
		e, ok := q.PopDue(clock.Days(time.Since(st.Epoch)))
		if !ok {
			break
		}
		res, err := f.Fetch(e.URL, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "  error %s: %v\n", e.URL, err)
			continue
		}
		fetched++
		if res.NotFound {
			fmt.Printf("  gone    %s\n", e.URL)
			_ = coll.Delete(e.URL)
			delete(st.Due, e.URL)
			delete(st.Histories, e.URL)
			continue
		}
		prev, had, err := coll.Get(e.URL)
		if err != nil {
			return err
		}
		changed := had && prev.Checksum != res.Checksum
		st.Histories[e.URL] = append(st.Histories[e.URL], obs{Day: res.Day, Changed: changed})

		if err := coll.Put(store.PageRecord{
			URL: e.URL, Checksum: res.Checksum, FetchedAt: res.Day, Links: res.Links,
		}); err != nil {
			return err
		}
		status := "new    "
		if had && changed {
			status = "changed"
		} else if had {
			status = "same   "
		}
		fmt.Printf("  %s %s (%d links)\n", status, e.URL, len(res.Links))

		// Reschedule by the EP estimate: unknown pages weekly, known
		// pages at half their estimated change interval, clamped.
		interval := reviseInterval(st.Histories[e.URL])
		st.Due[e.URL] = res.Day + interval
		q.Push(e.URL, st.Due[e.URL], 0)

		for _, l := range res.Links {
			l = htmlparse.Normalize(l)
			if sameSite && !seedHosts[hostOf(l)] {
				continue
			}
			if _, ok := st.Due[l]; !ok && !q.Contains(l) {
				q.Push(l, res.Day, 0)
				st.Due[l] = res.Day
			}
		}
	}
	fmt.Printf("fetched %d pages; collection holds %d\n", fetched, coll.Len())
	return saveState(filepath.Join(dir, "state.json"), st)
}

// reviseInterval estimates a revisit interval (days) from a visit
// history using EP, defaulting to 7 days with no signal.
func reviseInterval(history []obs) float64 {
	h := &changefreq.History{}
	for _, o := range history {
		if err := h.Record(changefreq.Observation{Time: o.Day, Changed: o.Changed}); err != nil {
			return 7
		}
	}
	est, err := changefreq.EPIrregular(h)
	if err != nil || est.Rate <= 0 {
		return 7
	}
	iv := 0.5 / est.Rate // revisit at twice the estimated change rate
	if iv < 0.5 {
		iv = 0.5
	}
	if iv > 60 {
		iv = 60
	}
	return iv
}

func hostOf(u string) string {
	s := u
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	return strings.ToLower(s)
}

func loadState(path string) (*state, error) {
	st := &state{
		Epoch:     time.Now().Truncate(time.Hour),
		Histories: make(map[string][]obs),
		Due:       make(map[string]float64),
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return st, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, st); err != nil {
		return nil, fmt.Errorf("corrupt state file %s: %w", path, err)
	}
	if st.Histories == nil {
		st.Histories = make(map[string][]obs)
	}
	if st.Due == nil {
		st.Due = make(map[string]float64)
	}
	return st, nil
}

func saveState(path string, st *state) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	// Keep histories bounded and deterministic on disk.
	for u, h := range st.Histories {
		if len(h) > 200 {
			st.Histories[u] = h[len(h)-200:]
		}
	}
	keys := make([]string, 0, len(st.Due))
	for k := range st.Due {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	data, err := json.MarshalIndent(st, "", " ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
