// Command webcrawl is a small production-style incremental crawler over
// real HTTP: seed URLs, polite fetching (robots.txt, per-host delay,
// optional night window), a disk-backed collection that survives
// restarts, checksum change detection, and EP-based revisit estimates.
//
// It is the live-web counterpart of the simulated experiments: the same
// frontier, store and estimator code paths, driven by wall-clock time.
//
// Usage:
//
//	webcrawl -seeds https://example.com/ -dir ./crawl -pages 50
//	webcrawl -seeds https://a.com/,https://b.org/ -delay 10s -night -workers 8
//
// The crawler runs one pass over all due URLs and exits; re-running
// continues incrementally from the stored state (compare timestamps and
// checksums across runs to watch change detection at work).
//
// The frontier is sharded per site: each worker claims a shard
// exclusively while it fetches from it, so concurrent workers never hit
// one host at once, and the politeness delay is enforced per shard (the
// HTTP fetcher enforces it per host again, as a backstop).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"webevolve/internal/clock"
	"webevolve/internal/cluster"
	"webevolve/internal/core"
	"webevolve/internal/crawlstate"
	"webevolve/internal/daemon"
	"webevolve/internal/fetch"
	"webevolve/internal/frontier"
	"webevolve/internal/htmlparse"
	"webevolve/internal/obs"
	"webevolve/internal/profiles"
	"webevolve/internal/registry"
	"webevolve/internal/robots"
	"webevolve/internal/store"
)

func main() {
	seeds := flag.String("seeds", "", "comma-separated seed URLs (required)")
	dir := flag.String("dir", "crawl-data", "directory for the persistent collection")
	maxPages := flag.Int("pages", 25, "maximum pages to fetch this run")
	delay := flag.Duration("delay", 10*time.Second, "minimum delay between requests to one host")
	night := flag.Bool("night", false, "crawl only 9PM-6AM local time (the paper's window)")
	sameSite := flag.Bool("samesite", true, "follow links only within seed hosts")
	agent := flag.String("agent", "", "override User-Agent")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrent fetch workers")
	shards := flag.Int("shards", 16, "per-site frontier shards")
	shardServers := flag.String("shard-servers", "", "comma-separated shardd endpoints hosting the frontier (replaces in-process shards)")
	storeServer := flag.String("store-server", "", "storerd endpoint hosting the page collection (replaces the local disk store in -dir)")
	registryAddr := flag.String("registry", "", "registryd endpoint; shard and store servers are discovered from it at startup (alternative to the static lists)")
	content := flag.Bool("content", true, "store page bodies in the collection (they feed the serving plane); disable to keep only metadata")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	metricsListen := flag.String("metrics-listen", "", "host:port for the debug listener serving /metrics, /debug/pprof and /debug/trace (empty disables)")
	metricsAddrFile := flag.String("metrics-addr-file", "", "write the debug listener's bound address to this file (removed on exit)")
	traceFile := flag.String("trace", "", "append JSONL trace events (fetch spans) to this file")
	flag.Parse()

	if *seeds == "" {
		fmt.Fprintln(os.Stderr, "webcrawl: -seeds is required")
		flag.Usage()
		os.Exit(2)
	}
	stopProfiles, err := profiles.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "webcrawl:", err)
		os.Exit(1)
	}
	stopDebug, err := daemon.ServeDebug("webcrawl", *metricsListen, *metricsAddrFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "webcrawl:", err)
		os.Exit(1)
	}
	if *traceFile != "" {
		tf, err := os.OpenFile(*traceFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "webcrawl:", err)
			os.Exit(1)
		}
		defer tf.Close()
		obs.DefaultTrace.SetWriter(tf)
	}
	o := crawlOpts{
		seeds:    strings.Split(*seeds, ","),
		dir:      *dir,
		maxPages: *maxPages,
		delay:    *delay,
		night:    *night,
		sameSite: *sameSite,
		agent:    *agent,
		workers:  *workers,
		shards:   *shards,
		content:  *content,
	}
	o.shardServers, err = daemon.ParseEndpoints(*shardServers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "webcrawl: -shard-servers:", err)
		os.Exit(1)
	}
	if *registryAddr != "" {
		o.registry, err = daemon.ParseEndpoint(*registryAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "webcrawl: -registry:", err)
			os.Exit(1)
		}
	}
	o.storeServer = *storeServer
	err = run(o)
	stopProfiles()
	stopDebug()
	if err != nil {
		fmt.Fprintln(os.Stderr, "webcrawl:", err)
		os.Exit(1)
	}
}

type crawlOpts struct {
	seeds    []string
	dir      string
	maxPages int
	delay    time.Duration
	night    bool
	sameSite bool
	agent    string
	workers  int
	shards   int
	// shardServers, when set, mounts the frontier from shardd daemons
	// instead of in-process shards. One webcrawl process owns the
	// cluster at a time: state.json and the page store are still
	// per-process, so sharing a cluster between concurrent crawlers
	// would split histories and overwrite schedules (multi-crawler
	// state is a ROADMAP item).
	shardServers []string
	// storeServer, when set, mounts the page collection from a storerd
	// daemon instead of the local disk store — same ownership caveat.
	// The collection is named "pages" on the server and persists there
	// across runs, like the -dir store does locally.
	storeServer string
	// registry, when set, discovers the shard and store servers from a
	// registryd daemon at startup instead of static lists. Discovery is
	// dial-time only here: webcrawl's dispatcher holds politeness claims
	// for its whole (short, -pages bounded) run, so there is no
	// quiescent boundary to migrate at — the simulation engines follow
	// membership live, webcrawl picks it up on the next run.
	registry string
	// content stores fetched page bodies alongside the metadata, so the
	// serving plane (webservd, storerd -serve) can return them.
	content bool
}

func run(o crawlOpts) error {
	var coll store.Collection
	var storeRemote *cluster.RemoteStore
	if o.storeServer != "" {
		var err error
		storeRemote, err = cluster.DialStoreTCP(o.storeServer, cluster.Options{})
		if err != nil {
			return fmt.Errorf("dialing store server: %w", err)
		}
		defer storeRemote.Close()
		coll = storeRemote.Collection("pages")
	} else if o.registry != "" && registryHasStores(o.registry) {
		var err error
		storeRemote, err = cluster.DialStoreRegistry(o.registry, cluster.Options{})
		if err != nil {
			return fmt.Errorf("dialing store members: %w", err)
		}
		defer storeRemote.Close()
		coll = storeRemote.Collection("pages")
	} else {
		disk, err := store.OpenDisk(filepath.Join(o.dir, "pages"))
		if err != nil {
			return err
		}
		defer disk.Close()
		coll = disk
	}
	st, err := crawlstate.Load(filepath.Join(o.dir, "state.json"))
	if err != nil {
		return err
	}

	pol := robots.Politeness{MinDelay: o.delay}
	if o.night {
		pol.NightOnly, pol.NightStart, pol.NightEnd = true, 21, 6
	}
	f := &fetch.HTTPFetcher{Politeness: pol, Epoch: st.Epoch, UserAgent: o.agent}

	// Rebuild the revisit queue: stored pages at their due times, seeds
	// and never-crawled discoveries immediately. Shards carry the
	// politeness delay, so claims from one site are spaced even before
	// the HTTP fetcher's own per-host gate.
	if o.shards < 1 {
		o.shards = 1
	}
	if o.workers < 1 {
		o.workers = 1
	}
	var q frontier.ShardSet
	var remote *cluster.RemoteShards
	if o.registry != "" {
		remote, err = cluster.DialRegistry(o.registry, cluster.Options{
			PolitenessDays: clock.Days(o.delay),
		})
		if err != nil {
			return fmt.Errorf("dialing registry cluster: %w", err)
		}
		defer remote.Close()
		q = remote
	} else if len(o.shardServers) > 0 {
		remote, err = cluster.DialTCP(o.shardServers, cluster.Options{
			PolitenessDays: clock.Days(o.delay),
		})
		if err != nil {
			return fmt.Errorf("dialing shard servers: %w", err)
		}
		defer remote.Close()
		q = remote
	} else {
		q = frontier.NewShardedPolite(o.shards, clock.Days(o.delay))
	}
	nowDay := clock.Days(time.Since(st.Epoch))
	rebuild := make([]frontier.Entry, 0, len(st.Due))
	for url, due := range st.Due {
		rebuild = append(rebuild, frontier.Entry{URL: url, Due: due})
	}
	q.PushBatch(rebuild) // one frame per shard server instead of one per stored URL
	for _, s := range o.seeds {
		s = htmlparse.Normalize(strings.TrimSpace(s))
		if !q.Contains(s) {
			q.Push(s, nowDay, 1)
			if _, ok := st.Due[s]; !ok {
				// Record seeds in the due table too, so link discovery
				// never mistakes a queued (or in-flight) seed for new.
				st.Due[s] = nowDay
			}
		}
	}

	seedHosts := make(map[string]bool)
	for _, s := range o.seeds {
		if u := htmlparse.Normalize(strings.TrimSpace(s)); u != "" {
			seedHosts[hostOf(u)] = true
		}
	}

	c := &crawl{
		opts: o, coll: coll, st: st, q: q, f: f, seedHosts: seedHosts,
		pending: make(map[string]uint64),
	}
	c.loop()
	fmt.Printf("fetched %d pages; collection holds %d\n", c.fetched.Load(), coll.Len())
	if c.err != nil {
		return c.err
	}
	if remote != nil {
		if err := remote.Err(); err != nil {
			return fmt.Errorf("shard cluster: %w", err)
		}
	}
	if storeRemote != nil {
		if err := storeRemote.Err(); err != nil {
			return fmt.Errorf("store server: %w", err)
		}
	}
	return crawlstate.Save(filepath.Join(o.dir, "state.json"), st)
}

// registryHasStores reports whether the registry lists any store
// members; without one, the collection stays on local disk (-dir).
func registryHasStores(registryAddr string) bool {
	ms, err := registry.NewClient(registryAddr).Membership()
	return err == nil && len(ms.Store()) > 0
}

// crawl is one webcrawl run: core's unified dispatcher claiming due
// shards and a pool of workers fetching them.
type crawl struct {
	opts      crawlOpts
	coll      store.Collection
	st        *crawlstate.State
	q         frontier.ShardSet
	f         *fetch.HTTPFetcher
	seedHosts map[string]bool

	mu      sync.Mutex // guards st maps, batch, pending, first error, and stdout
	err     error
	fetched atomic.Int64

	// batch buffers crawled records for one PutBatch write (like the
	// sim engine's apply), instead of paying a store flush per page;
	// pending keeps the buffered checksums visible to change detection
	// until the batch lands on disk.
	batch   []store.PageRecord
	pending map[string]uint64
}

// flushEvery is the store write batch size.
const flushEvery = 16

// prevChecksum returns the last stored checksum for url, consulting
// buffered-but-unflushed records before the collection.
func (c *crawl) prevChecksum(url string) (uint64, bool, error) {
	c.mu.Lock()
	sum, ok := c.pending[url]
	c.mu.Unlock()
	if ok {
		return sum, true, nil
	}
	prev, had, err := c.coll.Get(url)
	if err != nil {
		return 0, false, err
	}
	return prev.Checksum, had, nil
}

// flush writes the buffered records in one PutBatch. Safe from any
// worker; each call drains whatever is buffered at that instant.
func (c *crawl) flush() error {
	c.mu.Lock()
	batch := c.batch
	c.batch = nil
	c.mu.Unlock()
	if len(batch) == 0 {
		return nil
	}
	if err := c.coll.PutBatch(batch); err != nil {
		c.recordErr(err)
		return err
	}
	c.mu.Lock()
	for _, rec := range batch {
		// A newer fetch of the same URL may have re-buffered it; only
		// clear entries this batch actually made durable.
		if c.pending[rec.URL] == rec.Checksum {
			delete(c.pending, rec.URL)
		}
	}
	c.mu.Unlock()
	return nil
}

func (c *crawl) nowDay() float64 { return clock.Days(time.Since(c.st.Epoch)) }

func (c *crawl) recordErr(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
}

// loop dispatches due URLs to the worker pool until the fetch budget is
// spent or nothing more is due, through core.DispatchClaims — the same
// claim/fetch/release dispatcher the simulated engine and the update
// pipeline run on. Each dispatched job holds its shard's claim, so one
// site is never fetched by two workers at once.
func (c *crawl) loop() {
	err := core.DispatchClaims(core.ClaimDispatch{
		Workers: c.opts.workers,
		Coll:    c.q,
		Now:     c.nowDay,
		Work: func(url string) error {
			return c.crawlOne(url)
		},
		Release: func(shard int) {
			c.q.Release(shard, c.nowDay()+clock.Days(c.opts.delay))
		},
		Gate: func(_, inflight int64) bool {
			// An errored fetch refunds budget, so the gate re-checks as
			// fetches land rather than counting dispatches.
			return int(c.fetched.Load()+inflight) < c.opts.maxPages
		},
		Idle: func(inflight int64, _ int) bool {
			if inflight > 0 {
				time.Sleep(10 * time.Millisecond)
				return true
			}
			// Entries can be due but politeness-blocked; wait that out.
			// With nothing due at all, the pass is over.
			now := c.nowDay()
			head, hok := c.q.Peek()
			if !hok || head.Due > now {
				return false
			}
			if ev, eok := c.q.NextEvent(); eok && ev > now {
				time.Sleep(clock.FromDays(ev - now))
				return true
			}
			time.Sleep(10 * time.Millisecond)
			return true
		},
	})
	if err != nil {
		c.recordErr(err)
	}
	if err := c.flush(); err != nil { // the partial tail batch
		c.recordErr(err)
	}
}

// crawlOne fetches one URL and folds the result into the store, the
// change histories, and the frontier. Per-URL fetch failures are
// logged and refunded, not fatal; a returned error (store failure)
// stops the whole crawl.
func (c *crawl) crawlOne(url string) error {
	res, err := c.f.Fetch(url, 0)
	if err != nil {
		c.mu.Lock()
		fmt.Fprintf(os.Stderr, "  error %s: %v\n", url, err)
		c.mu.Unlock()
		return nil
	}
	c.fetched.Add(1)
	if res.NotFound {
		c.mu.Lock()
		// Drop any buffered record so the flush cannot resurrect the
		// vanished page after the delete below.
		for i, rec := range c.batch {
			if rec.URL == url {
				c.batch = append(c.batch[:i], c.batch[i+1:]...)
				break
			}
		}
		delete(c.pending, url)
		fmt.Printf("  gone    %s\n", url)
		delete(c.st.Due, url)
		delete(c.st.Histories, url)
		c.mu.Unlock()
		_ = c.coll.Delete(url)
		return nil
	}
	prevSum, had, err := c.prevChecksum(url)
	if err != nil {
		return err
	}
	changed := had && prevSum != res.Checksum
	c.mu.Lock()
	rec := store.PageRecord{
		URL: url, Checksum: res.Checksum, FetchedAt: res.Day, Links: res.Links,
	}
	if c.opts.content {
		rec.Content = res.Content
	}
	c.batch = append(c.batch, rec)
	c.pending[url] = res.Checksum
	full := len(c.batch) >= flushEvery
	c.mu.Unlock()
	if full {
		// A store failure must stop the crawl: flush already dropped
		// the batch, so continuing would silently lose every record
		// buffered after it.
		if err := c.flush(); err != nil {
			return err
		}
	}

	c.mu.Lock()
	c.st.Histories[url] = append(c.st.Histories[url], crawlstate.Obs{Day: res.Day, Changed: changed})
	// Reschedule by the EP estimate: unknown pages weekly, known pages
	// at half their estimated change interval, clamped.
	interval := crawlstate.ReviseInterval(c.st.Histories[url])
	due := res.Day + interval
	c.st.Due[url] = due

	status := "new    "
	if had && changed {
		status = "changed"
	} else if had {
		status = "same   "
	}
	fmt.Printf("  %s %s (%d links)\n", status, url, len(res.Links))

	var discovered []string
	for _, l := range res.Links {
		l = htmlparse.Normalize(l)
		if c.opts.sameSite && !c.seedHosts[hostOf(l)] {
			continue
		}
		if _, ok := c.st.Due[l]; !ok && !c.q.Contains(l) {
			c.st.Due[l] = res.Day
			discovered = append(discovered, l)
		}
	}
	c.mu.Unlock()

	c.q.Push(url, due, 0)
	for _, l := range discovered {
		c.q.Push(l, res.Day, 0)
	}
	return nil
}

func hostOf(u string) string {
	s := u
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	return strings.ToLower(s)
}
