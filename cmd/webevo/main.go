// Command webevo replays the paper's web-evolution experiment (Sections 2
// and 3) on the synthetic web and prints Table 1 and Figures 2, 4, 5 and
// 6. By default it runs every artifact at a reduced window size; use
// -pages 3000 for the paper's full scale.
//
// Usage:
//
//	webevo [-seed N] [-pages N] [-days N] [-only table1|fig2|fig4|fig5|fig6]
package main

import (
	"flag"
	"fmt"
	"os"

	"webevolve/internal/experiment"
	"webevolve/internal/report"
	"webevolve/internal/simweb"
)

func main() {
	seed := flag.Int64("seed", 1999, "simulation seed")
	pages := flag.Int("pages", 300, "pages per site window (paper: 3000)")
	days := flag.Int("days", experiment.PaperDays, "experiment length in days")
	only := flag.String("only", "", "run a single artifact: table1, fig2, fig4, fig5 or fig6")
	flag.Parse()

	if err := run(*seed, *pages, *days, *only); err != nil {
		fmt.Fprintln(os.Stderr, "webevo:", err)
		os.Exit(1)
	}
}

func run(seed int64, pages, days int, only string) error {
	want := func(name string) bool { return only == "" || only == name }

	if want("table1") {
		if err := table1(seed); err != nil {
			return err
		}
	}
	if !(want("fig2") || want("fig4") || want("fig5") || want("fig6")) {
		return nil
	}

	fmt.Printf("== Monitoring experiment: 270 sites x %d pages, %d daily crawls ==\n\n", pages, days)
	w, err := simweb.New(simweb.PaperScaleConfig(seed, pages))
	if err != nil {
		return err
	}
	obs, err := experiment.Monitor(w, experiment.MonitorConfig{Days: days})
	if err != nil {
		return err
	}
	fmt.Printf("pages observed: %d\n\n", obs.NumPages())

	if want("fig2") {
		fig2(obs)
	}
	if want("fig4") {
		fig4(obs)
	}
	if want("fig5") {
		fig5(obs)
	}
	if want("fig6") {
		if err := fig6(obs); err != nil {
			return err
		}
	}
	return nil
}

// table1 reproduces the site-selection pipeline of Section 2.2: site-level
// PageRank over a larger universe, top-400 candidates, 270 consenting.
func table1(seed int64) error {
	fmt.Println("== Table 1: sites per domain after PageRank selection ==")
	// A universe twice the paper's selection, in web-like domain
	// proportions, from which the top sites are chosen.
	cfg := simweb.Config{
		Seed: seed,
		SitesPerDomain: map[simweb.Domain]int{
			simweb.Com: 264, simweb.Edu: 156, simweb.NetOrg: 60, simweb.Gov: 60,
		},
		PagesPerSite: 40,
	}
	w, err := simweb.New(cfg)
	if err != nil {
		return err
	}
	sel, err := experiment.SelectSites(w, experiment.SelectionConfig{
		CandidateCount: 400,
		KeepCount:      270,
		Seed:           seed,
	})
	if err != nil {
		return err
	}
	rows := [][]string{
		{"com", fmt.Sprint(sel.Table1[simweb.Com]), "132"},
		{"edu", fmt.Sprint(sel.Table1[simweb.Edu]), "78"},
		{"netorg", fmt.Sprintf("%d (org: %d, net: %d)", sel.Table1[simweb.NetOrg], sel.SubCounts["org"], sel.SubCounts["net"]), "30 (org: 19, net: 11)"},
		{"gov", fmt.Sprintf("%d (gov: %d, mil: %d)", sel.Table1[simweb.Gov], sel.SubCounts["gov"], sel.SubCounts["mil"]), "30 (gov: 28, mil: 2)"},
	}
	fmt.Println(report.Table([]string{"domain", "selected", "paper"}, rows))
	return nil
}

func fig2(obs *experiment.Observations) {
	fmt.Println("== Figure 2: fraction of pages per average change interval ==")
	r := obs.Figure2()
	fmt.Println("(a) over all domains")
	fmt.Println(report.Bar(r.Overall.Labels, r.Overall.Fractions(), 48))
	fmt.Println("(b) per domain")
	vals := make(map[string][]float64)
	names := make([]string, 0, len(simweb.Domains))
	for _, d := range simweb.Domains {
		names = append(names, string(d))
		vals[string(d)] = r.ByDomain[d].Fractions()
	}
	fmt.Println(report.GroupedBar(r.Overall.Labels, names, vals, 40))
	fmt.Printf("crude overall mean change interval: %.0f days (paper: ~4 months)\n\n", r.MeanIntervalDays)
}

func fig4(obs *experiment.Observations) {
	fmt.Println("== Figure 4: visible lifespan of pages ==")
	r := obs.Figure4()
	fmt.Println("(a) over all domains")
	fmt.Println("Method 1 (observed span):")
	fmt.Println(report.Bar(r.Method1.Labels, r.Method1.Fractions(), 48))
	fmt.Println("Method 2 (censored spans doubled):")
	fmt.Println(report.Bar(r.Method2.Labels, r.Method2.Fractions(), 48))
	fmt.Println("(b) per domain (Method 1)")
	vals := make(map[string][]float64)
	names := make([]string, 0, len(simweb.Domains))
	for _, d := range simweb.Domains {
		names = append(names, string(d))
		vals[string(d)] = r.ByDomainM1[d].Fractions()
	}
	fmt.Println(report.GroupedBar(r.Method1.Labels, names, vals, 40))
}

func fig5(obs *experiment.Observations) {
	fmt.Println("== Figure 5: fraction of pages unchanged (and present) by day ==")
	r := obs.Figure5()
	days := make([]float64, len(r.Unchanged))
	for i := range days {
		days[i] = float64(i)
	}
	series := []report.Series{{Name: "all", X: days, Y: r.Unchanged}}
	for _, d := range simweb.Domains {
		series = append(series, report.Series{Name: string(d), X: days, Y: r.ByDomain[d]})
	}
	fmt.Println(report.Lines(series, 72, 16))
	if hl, ok := experiment.HalfLifeDays(r.Unchanged); ok {
		fmt.Printf("overall 50%% change point: %.1f days (paper: ~50)\n", hl)
	}
	for _, d := range simweb.Domains {
		if hl, ok := experiment.HalfLifeDays(r.ByDomain[d]); ok {
			fmt.Printf("  %-7s 50%% at %.1f days\n", d, hl)
		} else {
			fmt.Printf("  %-7s did not reach 50%% within the experiment\n", d)
		}
	}
	fmt.Println()
}

func fig6(obs *experiment.Observations) error {
	fmt.Println("== Figure 6: change intervals vs Poisson prediction (semilog) ==")
	for _, target := range []float64{10, 20} {
		r, err := obs.Figure6(target, 0.2)
		if err != nil {
			fmt.Printf("  %v-day class: %v\n", target, err)
			continue
		}
		obsSeries := report.SemilogY(report.Series{Name: "observed", X: r.GapDays, Y: r.ObservedFrac})
		predSeries := report.SemilogY(report.Series{Name: "poisson", X: r.GapDays, Y: r.PredictedFrac})
		fmt.Printf("(%v-day average change interval, %d gaps)\n", target, r.SampleGaps)
		fmt.Println(report.Lines([]report.Series{obsSeries, predSeries}, 72, 14))
		fmt.Printf("fitted decay rate %.4f vs 1/interval %.4f (log-fit R2 %.3f)\n\n",
			r.FittedRate, 1/target, r.FitR2)
	}
	return nil
}
