// Command crawlsim runs full crawlers against the synthetic evolving web
// and measures their freshness and collection quality with the oracle
// evaluator: the end-to-end comparison behind Figure 10 — the incremental
// crawler (steady, in-place, variable frequency) against the periodic
// crawler (batch, shadowing, fixed frequency) at equal average bandwidth —
// plus the full 2x2x2 design matrix if requested.
//
// Usage:
//
//	crawlsim [-seed N] [-days N] [-size N] [-matrix]
//	crawlsim -shard-servers 127.0.0.1:7070,127.0.0.1:7071   # frontier on shardd daemons
//	crawlsim -registry 127.0.0.1:7060                       # discover the cluster from registryd
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"webevolve/internal/cluster"
	"webevolve/internal/core"
	"webevolve/internal/daemon"
	"webevolve/internal/fetch"
	"webevolve/internal/obs"
	"webevolve/internal/profiles"
	"webevolve/internal/registry"
	"webevolve/internal/report"
	"webevolve/internal/simweb"
)

func main() {
	seed := flag.Int64("seed", 2000, "simulation seed")
	days := flag.Float64("days", 120, "virtual days to run")
	size := flag.Int("size", 2000, "collection size (pages)")
	matrix := flag.Bool("matrix", false, "run the full steady/batch x in-place/shadow x fixed/variable matrix")
	curves := flag.Bool("curves", false, "plot measured freshness-over-time curves (engine-measured Figure 7/8 analog)")
	workers := flag.Int("workers", 4, "concurrent crawl workers (results are identical at any count)")
	shards := flag.Int("shards", 16, "per-site frontier shards")
	shardServers := flag.String("shard-servers", "", "comma-separated shardd endpoints hosting the frontier (results are identical to local shards)")
	storeServer := flag.String("store-server", "", "storerd endpoint hosting the incremental crawlers' collections (results are identical to local stores; the periodic baseline stays local, like its frontier)")
	registryAddr := flag.String("registry", "", "registryd endpoint; shard and store servers are discovered from it and followed live (alternative to the static lists)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	traceFile := flag.String("trace", "", "append JSONL trace events (engine round/phase spans) to this file")
	metricsListen := flag.String("metrics-listen", "", "host:port for the debug listener serving /metrics, /debug/pprof and /debug/trace (empty disables)")
	metricsAddrFile := flag.String("metrics-addr-file", "", "write the debug listener's bound address to this file (with -metrics-listen :0)")
	flag.Parse()
	// The membership epoch gauge and migration counters live in this
	// process (the crawl client drives migrations), so the cluster smoke
	// scrapes crawlsim's /metrics mid-crawl to watch a join land.
	stopDebug, err := daemon.ServeDebug("crawlsim", *metricsListen, *metricsAddrFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crawlsim:", err)
		os.Exit(1)
	}
	defer stopDebug()
	stopProfiles, err := profiles.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crawlsim:", err)
		os.Exit(1)
	}
	if *traceFile != "" {
		// The engine emits one span per phase per dispatch round into
		// the process trace; writing them out makes the pipeline's
		// overlap (round N applying while N+1 fetches) inspectable
		// offline by grouping on the round IDs.
		tf, err := os.OpenFile(*traceFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crawlsim:", err)
			os.Exit(1)
		}
		defer tf.Close()
		obs.DefaultTrace.SetWriter(tf)
	}
	eng := engine{workers: *workers, shards: *shards, storeServer: *storeServer}
	eng.shardServers, err = daemon.ParseEndpoints(*shardServers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crawlsim: -shard-servers:", err)
		os.Exit(1)
	}
	if *registryAddr != "" {
		eng.registry, err = daemon.ParseEndpoint(*registryAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crawlsim: -registry:", err)
			os.Exit(1)
		}
	}
	if *curves {
		err = runCurves(*seed, *days, *size, &eng)
	} else {
		err = run(*seed, *days, *size, *matrix, &eng)
	}
	stopProfiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, "crawlsim:", err)
		os.Exit(1)
	}
}

// engine carries the crawl-engine concurrency knobs into every
// contender's config — and, with -shard-servers / -store-server, the
// remote frontier cluster and repository store every contender mounts
// in turn.
type engine struct {
	workers, shards int
	shardServers    []string
	storeServer     string
	registry        string

	active *cluster.RemoteShards // the contender currently holding the cluster
}

func (e *engine) apply(cfg core.Config) (core.Config, error) {
	cfg.Workers = e.workers
	cfg.Shards = e.shards
	if e.registry != "" {
		rs, err := cluster.DialRegistry(e.registry, cluster.Options{
			PolitenessDays: cfg.ShardPolitenessDays,
		})
		if err != nil {
			return cfg, fmt.Errorf("dialing registry cluster: %w", err)
		}
		if err := rs.Reset(); err != nil {
			return cfg, err
		}
		e.active = rs
		cfg.Frontier = rs
		// The store side rides the registry too: wipe any registered
		// store members, then let core.New discover them via the config.
		if err := resetRegistryStores(e.registry); err != nil {
			return cfg, err
		}
		cfg.Registry = e.registry
		return cfg, nil
	}
	if len(e.shardServers) > 0 {
		rs, err := cluster.DialTCP(e.shardServers, cluster.Options{
			PolitenessDays: cfg.ShardPolitenessDays,
		})
		if err != nil {
			return cfg, fmt.Errorf("dialing shard servers: %w", err)
		}
		// Contenders run sequentially over one cluster; start each from
		// a clean frontier.
		if err := rs.Reset(); err != nil {
			return cfg, err
		}
		e.active = rs
		cfg.Frontier = rs
	}
	if e.storeServer != "" {
		// Same discipline for the repository: wipe the server's
		// collections so each contender starts from empty, then let
		// core.New mount it via the config.
		if err := resetStore(e.storeServer); err != nil {
			return cfg, err
		}
		cfg.StoreServer = e.storeServer
	}
	return cfg, nil
}

// resetStore connects briefly to wipe every collection on the store
// server.
func resetStore(addr string) error {
	rs, err := cluster.DialStoreTCP(addr, cluster.Options{})
	if err != nil {
		return fmt.Errorf("dialing store server: %w", err)
	}
	defer rs.Close()
	return rs.Reset()
}

// resetRegistryStores wipes every collection on every store member the
// registry knows; a cluster without store members is fine (collections
// then live in memory).
func resetRegistryStores(registryAddr string) error {
	ms, err := registry.NewClient(registryAddr).Membership()
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	if len(ms.Store()) == 0 {
		return nil
	}
	rs, err := cluster.DialStoreRegistry(registryAddr, cluster.Options{})
	if err != nil {
		return fmt.Errorf("dialing store members: %w", err)
	}
	defer rs.Close()
	return rs.Reset()
}

// finish releases the cluster after a contender's run and surfaces any
// transport error its frontier swallowed.
func (e *engine) finish() error {
	if e.active == nil {
		return nil
	}
	err := e.active.Err()
	e.active.Close()
	e.active = nil
	if err != nil {
		return fmt.Errorf("shard cluster: %w", err)
	}
	return nil
}

// runCurves measures freshness over time from the live engine for the
// four Section 4 design points — the engine-measured counterpart of the
// analytic Figures 7 and 8.
func runCurves(seed int64, days float64, size int, eng *engine) error {
	cycle := 10.0
	fmt.Printf("== Measured freshness evolution (%d pages, %.0f-day cycle) ==\n\n", size, cycle)
	var series []report.Series
	for _, d := range []struct {
		name string
		mode core.Mode
		upd  core.UpdateStyle
	}{
		{"steady/in-place", core.Steady, core.InPlace},
		{"batch/in-place", core.Batch, core.InPlace},
		{"steady/shadow", core.Steady, core.Shadow},
		{"batch/shadow", core.Batch, core.Shadow},
	} {
		w, err := newWeb(seed)
		if err != nil {
			return err
		}
		cfg, err := eng.apply(core.Config{
			Seeds:          w.RootURLs(),
			CollectionSize: size,
			PagesPerDay:    float64(size) / cycle,
			CycleDays:      cycle,
			BatchDays:      cycle / 4,
			Mode:           d.mode,
			Update:         d.upd,
		})
		if err != nil {
			return err
		}
		c, err := core.New(cfg, fetch.NewSimFetcher(w))
		if err != nil {
			return err
		}
		ev := &core.Evaluator{Web: w}
		_, samples, err := ev.TimeAveragedFreshness(c, days, 2*cycle, 96, size)
		if err != nil {
			return err
		}
		if err := c.Close(); err != nil {
			return err
		}
		if err := eng.finish(); err != nil {
			return err
		}
		sr := report.Series{Name: d.name}
		for _, s := range samples {
			sr.X = append(sr.X, s.Day)
			sr.Y = append(sr.Y, s.Value)
		}
		series = append(series, sr)
	}
	fmt.Println(report.Lines(series, 76, 20))
	fmt.Println("compare with cmd/freshsim's analytic Figures 7 and 8: batch curves")
	fmt.Println("oscillate within each cycle, steady curves hold level, and shadowing")
	fmt.Println("drags the steady crawler's level down.")
	return nil
}

func newWeb(seed int64) (*simweb.Web, error) {
	return simweb.New(simweb.Config{
		Seed: seed,
		SitesPerDomain: map[simweb.Domain]int{
			simweb.Com: 10, simweb.Edu: 6, simweb.NetOrg: 2, simweb.Gov: 2,
		},
		PagesPerSite: 150,
	})
}

type contender struct {
	name string
	run  func(w *simweb.Web) (core.Runner, error)
}

func run(seed int64, days float64, size int, matrix bool, eng *engine) error {
	// Bandwidth: revisit the whole collection every ~10 days on average.
	cycle := 10.0
	bandwidth := float64(size) / cycle

	baseCfg := func(w *simweb.Web) core.Config {
		cfg := core.Config{
			Seeds:          w.RootURLs(),
			CollectionSize: size,
			PagesPerDay:    bandwidth,
			CycleDays:      cycle,
			BatchDays:      cycle / 4,
			RankEveryDays:  cycle,
			Estimator:      core.EstimatorEP,
		}
		cfg.Workers = eng.workers
		cfg.Shards = eng.shards
		return cfg
	}
	base := func(w *simweb.Web) (core.Config, error) {
		return eng.apply(baseCfg(w))
	}

	contenders := []contender{
		{"incremental (steady, in-place, variable)", func(w *simweb.Web) (core.Runner, error) {
			cfg, err := base(w)
			if err != nil {
				return nil, err
			}
			cfg.Mode, cfg.Update, cfg.Freq = core.Steady, core.InPlace, core.VariableFreq
			return core.New(cfg, fetch.NewSimFetcher(w))
		}},
		{"periodic (batch, shadowing, fixed, from scratch)", func(w *simweb.Web) (core.Runner, error) {
			// The periodic baseline has no frontier, so never mount the
			// remote cluster for it (baseCfg, not base).
			return core.NewPeriodic(baseCfg(w), fetch.NewSimFetcher(w))
		}},
	}
	if matrix {
		for _, mode := range []core.Mode{core.Steady, core.Batch} {
			for _, upd := range []core.UpdateStyle{core.InPlace, core.Shadow} {
				for _, fr := range []core.FreqPolicy{core.FixedFreq, core.VariableFreq} {
					mode, upd, fr := mode, upd, fr
					name := fmt.Sprintf("%s, %s, %s", mode, upd, fr)
					contenders = append(contenders, contender{name, func(w *simweb.Web) (core.Runner, error) {
						cfg, err := base(w)
						if err != nil {
							return nil, err
						}
						cfg.Mode, cfg.Update, cfg.Freq = mode, upd, fr
						return core.New(cfg, fetch.NewSimFetcher(w))
					}})
				}
			}
		}
	}

	fmt.Printf("== Crawler comparison: %d-page collection, %.0f pages/day, %.0f virtual days ==\n\n",
		size, bandwidth, days)
	rows := make([][]string, 0, len(contenders))
	for _, c := range contenders {
		w, err := newWeb(seed) // fresh identical web per contender
		if err != nil {
			return err
		}
		r, err := c.run(w)
		if err != nil {
			return err
		}
		ev := &core.Evaluator{Web: w}
		warm := 2 * cycle
		avg, _, err := ev.TimeAveragedFreshness(r, days, warm, 24, size)
		if err != nil {
			return err
		}
		q, err := ev.Quality(r.Collection(), r.Day())
		if err != nil {
			return err
		}
		// Release what the contender owns (its store connection and
		// remaining server-side generations, when remote).
		if cl, ok := r.(io.Closer); ok {
			if err := cl.Close(); err != nil {
				return err
			}
		}
		if err := eng.finish(); err != nil {
			return err
		}
		rows = append(rows, []string{c.name, fmt.Sprintf("%.3f", avg), fmt.Sprintf("%.3f", q)})
	}
	fmt.Println(report.Table([]string{"crawler", "avg freshness", "quality"}, rows))
	fmt.Println("expected shape: the incremental crawler dominates the periodic one on")
	fmt.Println("freshness at equal average bandwidth; shadowing costs a steady crawler")
	fmt.Println("more than a batch one; variable frequency beats fixed.")
	return nil
}
