// Command registryd is the cluster membership registry daemon: shardd
// and storerd processes register themselves here and heartbeat their
// liveness, and crawl clients discover the member set — plus its
// monotonically increasing epoch — instead of being handed static
// -shard-servers/-store-server lists. A shard server joining or
// leaving a live cluster parks the change as a *pending* membership;
// the crawl client drives the partition migration at its next
// quiescent round boundary and then completes the epoch flip here, so
// crawls stay bit-identical across membership changes.
//
// Usage:
//
//	registryd -listen 127.0.0.1:7060 -ttl 10s
//	shardd  -listen :0 -registry 127.0.0.1:7060
//	storerd -listen :0 -registry 127.0.0.1:7060
//	crawlsim -registry 127.0.0.1:7060 ...
//
// A member that misses its heartbeat TTL is expired lazily: for shard
// members this drops queued frontier entries the ring mapped to it
// (run shardd with -wal and rejoin to recover them); graceful leaves
// (SIGTERM) migrate entries out first and lose nothing.
//
// The registry itself holds only soft state — members re-register
// within one TTL after a registryd restart, and clients keep crawling
// on their last-known epoch while the registry is unreachable.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"webevolve/internal/daemon"
	"webevolve/internal/obs"
	"webevolve/internal/registry"
)

func main() {
	common := daemon.New("127.0.0.1:7060")
	ttl := flag.Duration("ttl", registry.DefaultTTL, "heartbeat lease; a member silent for this long is expired")
	flag.Parse()

	if err := run(common, *ttl); err != nil {
		daemon.Fatal("registryd", err)
	}
}

func run(common *daemon.Flags, ttl time.Duration) error {
	srv := registry.NewServer(ttl)
	ln, err := net.Listen("tcp", common.Listen)
	if err != nil {
		return err
	}
	addr := ln.Addr().String()
	fmt.Printf("registryd: serving on %s (ttl %v)\n", addr, ttl)
	cleanup, err := common.Publish(addr)
	if err != nil {
		ln.Close()
		return err
	}
	defer cleanup()

	obs.Default.GaugeFunc("webevolve_registry_epoch",
		"membership epoch installed at this registry",
		func() float64 { return float64(srv.Membership().Epoch) })
	obs.Default.GaugeFunc("webevolve_registry_members",
		"live members (shard and store) registered here",
		func() float64 { return float64(len(srv.Membership().Members)) })
	stopDebug, err := common.ServeDebug("registryd")
	if err != nil {
		ln.Close()
		return err
	}
	defer stopDebug()

	hs := &http.Server{Handler: srv.Handler()}
	stopSig := daemon.OnShutdown(func(s os.Signal) {
		fmt.Printf("registryd: %v, shutting down\n", s)
		hs.Close()
	})
	defer stopSig()
	stopStats := common.EveryStats("registryd")
	defer stopStats()

	if err := hs.Serve(ln); err != http.ErrServerClosed {
		return err
	}
	return nil
}
