// Command shardd is the frontier shard server daemon: it hosts a set
// of per-site frontier shards behind the cluster wire protocol, so
// crawl engines on other machines mount them with -shard-servers (or
// core.Config.ShardServers) and run unchanged. Several shardd
// processes form a frontier cluster; every client must list them in
// the same order, because the order is the URL routing.
//
// Usage:
//
//	shardd -listen 127.0.0.1:7070 -shards 16 -wal /var/lib/shardd
//	crawlsim -shard-servers 127.0.0.1:7070,127.0.0.1:7071
//
// With -listen :0 the kernel assigns a port; the bound address is
// printed on stdout and, with -addr-file, written to a file that
// orchestration scripts can wait on (the CI cluster smoke job does).
// The address file is removed on shutdown, so waiters never race onto
// a stale address from a previous run.
//
// With -wal, the frontier survives restarts: every mutating op is
// appended to a CRC-framed write-ahead log before it is acknowledged,
// the log is compacted into a snapshot periodically and on graceful
// shutdown, and a restarted shardd replays snapshot + log — including
// after a SIGKILL, where a torn final frame is truncated away (it was
// never acknowledged, so the client retries it).
//
// With -frontier-dir, entries spill to per-shard record logs on disk
// and only the due-soon head of each shard (bounded by
// -frontier-resident across the server) stays in RAM, so the crawl
// horizon is capped by disk instead of memory. Pop order is
// bit-identical to the in-memory tier. Combine with -wal for
// durability: on restart the WAL is authoritative and rebuilds the
// spill logs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"webevolve/internal/cluster"
	"webevolve/internal/daemon"
	"webevolve/internal/frontier"
	"webevolve/internal/obs"
	"webevolve/internal/registry"
)

func main() {
	common := daemon.New("127.0.0.1:7070")
	shards := flag.Int("shards", 16, "per-site frontier shards hosted by this server")
	politeness := flag.Float64("politeness", 0, "default per-shard politeness gap in days (clients usually override at connect)")
	walDir := flag.String("wal", "", "directory for the frontier write-ahead log; queued entries survive restarts (empty disables persistence)")
	walCompactEvery := flag.Duration("wal-compact-every", time.Minute, "interval between WAL compactions (snapshot + log truncation; 0 disables periodic compaction)")
	registryAddr := flag.String("registry", "", "registryd endpoint to register with (host:port); joins the dynamic cluster instead of being listed statically")
	frontierDir := flag.String("frontier-dir", "", "directory for the disk-backed frontier tier: entries spill to per-shard record logs and only the due-soon head stays in RAM (empty keeps the frontier fully in memory)")
	frontierResident := flag.Int("frontier-resident", frontier.DefaultResidentBudget, "resident-entry budget for -frontier-dir: approximate cap on entries materialized in RAM across all shards")
	flag.Parse()

	if err := run(common, *shards, *politeness, *walDir, *walCompactEvery, *registryAddr, *frontierDir, *frontierResident); err != nil {
		daemon.Fatal("shardd", err)
	}
}

func run(common *daemon.Flags, shards int, politeness float64, walDir string, walCompactEvery time.Duration, registryAddr, frontierDir string, frontierResident int) error {
	q, err := frontier.OpenSharded(frontier.StoreConfig{
		Shards:         shards,
		Politeness:     politeness,
		SpillDir:       frontierDir,
		ResidentBudget: frontierResident,
	})
	if err != nil {
		return err
	}
	defer q.Close()
	if frontierDir != "" {
		fmt.Printf("shardd: disk frontier tier in %s (resident budget %d entries)\n", frontierDir, frontierResident)
	}
	srv := cluster.NewShardServer(q)
	if walDir != "" {
		if err := srv.OpenWAL(walDir); err != nil {
			return err
		}
		fmt.Printf("shardd: WAL %s recovered %d queued entries\n", walDir, q.Len())
	}
	if err := srv.Listen(common.Listen); err != nil {
		return err
	}
	addr := srv.Addr().String()
	fmt.Printf("shardd: serving %d shards on %s\n", shards, addr)
	cleanup, err := common.Publish(addr)
	if err != nil {
		return err
	}
	defer cleanup()

	// The queue depth rides the registry as live gauges, so it shows up
	// in /metrics scrapes and the -stats-every line alike.
	obs.Default.GaugeFunc("webevolve_frontier_entries",
		"entries queued across this server's shards",
		func() float64 { return float64(q.Len()) })
	obs.Default.GaugeFunc("webevolve_frontier_shards",
		"frontier shards hosted by this server",
		func() float64 { return float64(q.NumShards()) })
	// Residency split of the storage tier: with -frontier-dir these show
	// the due-soon head in RAM versus the entries spilled to the record
	// logs; with the in-memory tier everything is resident and the spill
	// gauges stay zero.
	obs.Default.GaugeFunc("webevolve_frontier_resident_entries",
		"frontier entries materialized in RAM (the due-soon head with -frontier-dir)",
		func() float64 { return float64(q.Tier().Resident) })
	obs.Default.GaugeFunc("webevolve_frontier_spilled_entries",
		"frontier entries living only in the spill record logs",
		func() float64 { return float64(q.Tier().Spilled) })
	obs.Default.GaugeFunc("webevolve_frontier_spill_bytes",
		"bytes occupied by the frontier spill record logs",
		func() float64 { return float64(q.Tier().SpillBytes) })
	stopDebug, err := common.ServeDebug("shardd")
	if err != nil {
		return err
	}
	defer stopDebug()

	// Joining the registry makes this server discoverable; the crawl
	// client migrates partitions onto it at its next round boundary.
	var session *registry.Session
	if registryAddr != "" {
		ep, err := daemon.ParseEndpoint(registryAddr)
		if err != nil {
			return fmt.Errorf("-registry: %v", err)
		}
		session, err = registry.StartSession(registry.NewClient(ep), registry.Member{
			Kind: registry.KindShard, Addr: addr, Shards: shards,
		})
		if err != nil {
			return fmt.Errorf("registering at %s: %w", ep, err)
		}
		fmt.Printf("shardd: registered at %s as %s\n", ep, addr)
	}

	stopSig := daemon.OnShutdown(func(s os.Signal) {
		if session != nil {
			// Graceful leave: announce, then keep serving the wire
			// protocol until the migrating client has exported our
			// partitions (or the drain times out — entries then recover
			// from the WAL when we rejoin).
			fmt.Printf("shardd: %v, leaving cluster (draining %d queued entries)\n", s, q.Len())
			if err := session.CloseWait(30 * time.Second); err != nil {
				fmt.Fprintln(os.Stderr, "shardd: leave:", err)
			}
		}
		if walDir != "" {
			fmt.Printf("shardd: %v, shutting down (persisting %d queued entries)\n", s, q.Len())
		} else {
			fmt.Printf("shardd: %v, shutting down (dropping %d queued entries; run with -wal to keep them)\n", s, q.Len())
		}
		srv.Close()
	})
	defer stopSig()
	stopStats := common.EveryStats("shardd")
	defer stopStats()
	var stopCompact func()
	if walDir != "" {
		stopCompact = daemon.Every(walCompactEvery, func() {
			if err := srv.CompactWAL(); err != nil {
				fmt.Fprintln(os.Stderr, "shardd: wal compaction:", err)
			}
		})
		defer stopCompact()
	}

	err = srv.Serve()
	if session != nil {
		session.Close() // no-op after a graceful CloseWait
	}
	if walDir != "" {
		stopCompact()
		// The graceful-shutdown flush: every queued entry lands in the
		// final snapshot instead of being announced and dropped.
		if werr := srv.CloseWAL(); werr != nil {
			if err == cluster.ErrServerClosed {
				return werr
			}
			// Serve's own error wins, but the failed flush must not
			// vanish: the operator would believe the queue persisted.
			fmt.Fprintln(os.Stderr, "shardd: wal shutdown flush:", werr)
		} else {
			fmt.Printf("shardd: WAL %s flushed %d queued entries\n", walDir, q.Len())
		}
	}
	if err != cluster.ErrServerClosed {
		return err
	}
	return nil
}
