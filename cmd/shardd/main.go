// Command shardd is the frontier shard server daemon: it hosts a set
// of per-site frontier shards behind the cluster wire protocol, so
// crawl engines on other machines mount them with -shard-servers (or
// core.Config.ShardServers) and run unchanged. Several shardd
// processes form a frontier cluster; every client must list them in
// the same order, because the order is the URL routing.
//
// Usage:
//
//	shardd -listen 127.0.0.1:7070 -shards 16
//	crawlsim -shard-servers 127.0.0.1:7070,127.0.0.1:7071
//
// With -listen :0 the kernel assigns a port; the bound address is
// printed on stdout and, with -addr-file, written to a file that
// orchestration scripts can wait on (the CI cluster smoke job does).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"webevolve/internal/cluster"
	"webevolve/internal/frontier"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "host:port to serve on (:0 for an assigned port)")
	shards := flag.Int("shards", 16, "per-site frontier shards hosted by this server")
	politeness := flag.Float64("politeness", 0, "default per-shard politeness gap in days (clients usually override at connect)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	statsEvery := flag.Duration("stats-every", 0, "log queue stats at this interval (0 disables)")
	flag.Parse()

	if err := run(*listen, *shards, *politeness, *addrFile, *statsEvery); err != nil {
		fmt.Fprintln(os.Stderr, "shardd:", err)
		os.Exit(1)
	}
}

func run(listen string, shards int, politeness float64, addrFile string, statsEvery time.Duration) error {
	q := frontier.NewShardedPolite(shards, politeness)
	srv := cluster.NewShardServer(q)
	if err := srv.Listen(listen); err != nil {
		return err
	}
	addr := srv.Addr().String()
	fmt.Printf("shardd: serving %d shards on %s\n", shards, addr)
	if addrFile != "" {
		// Write-then-rename so waiters never read a partial address.
		tmp := addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, addrFile); err != nil {
			return err
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Printf("shardd: %v, shutting down (%d entries queued)\n", s, q.Len())
		srv.Close()
	}()

	if statsEvery > 0 {
		go func() {
			for range time.Tick(statsEvery) {
				fmt.Printf("shardd: %d entries across %d shards\n", q.Len(), q.NumShards())
			}
		}()
	}

	if err := srv.Serve(); err != cluster.ErrServerClosed {
		return err
	}
	return nil
}
