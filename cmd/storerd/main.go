// Command storerd is the repository store-server daemon: it hosts
// named page collections behind the cluster wire protocol, so crawl
// engines on other machines mount their repository with -store-server
// (or core.Config.StoreServer) and run unchanged — the storage-side
// counterpart of shardd, completing the split that lets a crawl's
// frontier *and* repository live off the crawling machine.
//
// Usage:
//
//	storerd -listen 127.0.0.1:7080 -dir /var/lib/storerd
//	webcrawl -seeds https://example.com/ -store-server 127.0.0.1:7080
//	crawlsim -store-server 127.0.0.1:7080
//
// With -dir, collections are log-structured disk stores (one
// subdirectory per collection) that survive daemon restarts — every
// acknowledged write batch is flushed, and a crash's torn or corrupt
// segment tail is swept on reopen. Without -dir, collections live in
// memory and die with the process (simulations, smoke tests).
//
// With -serve, storerd additionally exposes the HTTP read API
// (internal/serve) over one of its collections on a second address, so
// the machine holding the repository serves it directly — readers skip
// the crawling machine entirely:
//
//	storerd -listen 127.0.0.1:7080 -dir /var/lib/storerd \
//	        -serve 127.0.0.1:8080 -serve-collection pages
//	curl http://127.0.0.1:8080/v1/pages/https://example.com/
//
// The HTTP server reads the same live collection the wire protocol
// writes, so pages appear to readers as soon as the crawl stores them.
// Change-frequency estimates live with the crawler's state, not the
// repository, so /v1/estimates answers 501 here (use webservd over a
// crawl directory for estimates).
//
// With -listen :0 the kernel assigns a port; the bound address is
// printed on stdout and, with -addr-file (and -serve-addr-file for the
// HTTP side), written to a file that orchestration scripts can wait
// on. Address files are removed on shutdown, so waiters never race
// onto a stale address from a previous run.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"webevolve/internal/cluster"
	"webevolve/internal/daemon"
	"webevolve/internal/obs"
	"webevolve/internal/registry"
	"webevolve/internal/serve"
	"webevolve/internal/store"
)

func main() {
	common := daemon.New("127.0.0.1:7080")
	dir := flag.String("dir", "", "directory for disk-backed collections, one subdirectory each (empty: in-memory, lost at exit)")
	serveAddr := flag.String("serve", "", "host:port for the HTTP read API over one collection (empty disables; :0 for an assigned port)")
	serveColl := flag.String("serve-collection", "pages", "collection the HTTP read API serves")
	serveAddrFile := flag.String("serve-addr-file", "", "write the HTTP read API's bound address to this file (removed on shutdown)")
	registryAddr := flag.String("registry", "", "registryd endpoint to register with (host:port); store clients then discover this server instead of being pointed at it")
	flag.Parse()

	if err := run(common, *dir, *serveAddr, *serveColl, *serveAddrFile, *registryAddr); err != nil {
		daemon.Fatal("storerd", err)
	}
}

func run(common *daemon.Flags, dir, serveAddr, serveColl, serveAddrFile, registryAddr string) error {
	var srv *cluster.StoreServer
	if dir != "" {
		srv = cluster.NewDiskStoreServer(dir)
		fmt.Printf("storerd: disk-backed collections under %s\n", dir)
	} else {
		srv = cluster.NewMemStoreServer()
		fmt.Println("storerd: in-memory collections (run with -dir to persist)")
	}
	if err := srv.Listen(common.Listen); err != nil {
		return err
	}
	addr := srv.Addr().String()
	fmt.Printf("storerd: serving on %s\n", addr)
	cleanup, err := common.Publish(addr)
	if err != nil {
		return err
	}
	defer cleanup()

	obs.Default.GaugeFunc("webevolve_store_open_collections",
		"collections this server has open",
		func() float64 { return float64(len(srv.Collections())) })
	stopDebug, err := common.ServeDebug("storerd")
	if err != nil {
		return err
	}
	defer stopDebug()

	var httpSrv *http.Server
	if serveAddr != "" {
		// The HTTP read API fronts the same live collection the wire
		// protocol writes (Collection memoizes per name), so stored
		// pages are immediately servable. The collection never swaps
		// under storerd, hence the static source.
		coll, err := srv.Collection(serveColl)
		if err != nil {
			return fmt.Errorf("open serve collection %q: %w", serveColl, err)
		}
		// Caching is off: this collection is written in place (no swap
		// ever bumps the generation), so a cached body could go stale
		// the moment the crawl rewrites the page. Reads go straight to
		// the collection, which is local anyway.
		api := serve.New(serve.Config{Source: serve.Static(store.Reader(coll)), CacheEntries: -1})
		ln, err := net.Listen("tcp", serveAddr)
		if err != nil {
			return fmt.Errorf("serve listen: %w", err)
		}
		fmt.Printf("storerd: HTTP read API for collection %q on %s\n", serveColl, ln.Addr())
		httpCleanup, err := daemon.PublishAddr(serveAddrFile, ln.Addr().String())
		if err != nil {
			ln.Close()
			return err
		}
		defer httpCleanup()
		httpSrv = &http.Server{Handler: api, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "storerd: http serve:", err)
			}
		}()
	}

	// Store members register immediately (no migration protocol: store
	// data stays put, clients pin collections to members at dial time).
	var session *registry.Session
	if registryAddr != "" {
		ep, err := daemon.ParseEndpoint(registryAddr)
		if err != nil {
			return fmt.Errorf("-registry: %v", err)
		}
		session, err = registry.StartSession(registry.NewClient(ep), registry.Member{
			Kind: registry.KindStore, Addr: addr,
		})
		if err != nil {
			return fmt.Errorf("registering at %s: %w", ep, err)
		}
		fmt.Printf("storerd: registered at %s as %s\n", ep, addr)
	}

	stopSig := daemon.OnShutdown(func(s os.Signal) {
		if session != nil {
			session.Close()
		}
		fmt.Printf("storerd: %v, shutting down\n", s)
		srv.Close()
	})
	defer stopSig()
	stopStats := common.EveryStats("storerd")
	defer stopStats()

	err = srv.Serve()
	if session != nil {
		session.Close()
	}
	// Serve only returns once Close ran, and Close flushes and closes
	// every collection — the disk stores' durable shutdown. The HTTP
	// side stops with it; a read landing in the window reports the
	// closed collection as an error, it never blocks shutdown.
	if httpSrv != nil {
		httpSrv.Close()
	}
	if err != cluster.ErrServerClosed {
		return err
	}
	return nil
}
