// Command storerd is the repository store-server daemon: it hosts
// named page collections behind the cluster wire protocol, so crawl
// engines on other machines mount their repository with -store-server
// (or core.Config.StoreServer) and run unchanged — the storage-side
// counterpart of shardd, completing the split that lets a crawl's
// frontier *and* repository live off the crawling machine.
//
// Usage:
//
//	storerd -listen 127.0.0.1:7080 -dir /var/lib/storerd
//	webcrawl -seeds https://example.com/ -store-server 127.0.0.1:7080
//	crawlsim -store-server 127.0.0.1:7080
//
// With -dir, collections are log-structured disk stores (one
// subdirectory per collection) that survive daemon restarts — every
// acknowledged write batch is flushed, and a crash's torn or corrupt
// segment tail is swept on reopen. Without -dir, collections live in
// memory and die with the process (simulations, smoke tests).
//
// With -listen :0 the kernel assigns a port; the bound address is
// printed on stdout and, with -addr-file, written to a file that
// orchestration scripts can wait on. The address file is removed on
// shutdown, so waiters never race onto a stale address from a previous
// run.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"webevolve/internal/cluster"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7080", "host:port to serve on (:0 for an assigned port)")
	dir := flag.String("dir", "", "directory for disk-backed collections, one subdirectory each (empty: in-memory, lost at exit)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (removed on shutdown)")
	statsEvery := flag.Duration("stats-every", 0, "log collection stats at this interval (0 disables)")
	flag.Parse()

	if err := run(*listen, *dir, *addrFile, *statsEvery); err != nil {
		fmt.Fprintln(os.Stderr, "storerd:", err)
		os.Exit(1)
	}
}

func run(listen, dir, addrFile string, statsEvery time.Duration) error {
	var srv *cluster.StoreServer
	if dir != "" {
		srv = cluster.NewDiskStoreServer(dir)
		fmt.Printf("storerd: disk-backed collections under %s\n", dir)
	} else {
		srv = cluster.NewMemStoreServer()
		fmt.Println("storerd: in-memory collections (run with -dir to persist)")
	}
	if err := srv.Listen(listen); err != nil {
		return err
	}
	addr := srv.Addr().String()
	fmt.Printf("storerd: serving on %s\n", addr)
	if addrFile != "" {
		// Write-then-rename so waiters never read a partial address.
		tmp := addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, addrFile); err != nil {
			return err
		}
		defer os.Remove(addrFile)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Printf("storerd: %v, shutting down\n", s)
		srv.Close()
	}()

	// Background ticker stops with the server (NewTicker, not
	// time.Tick, so nothing leaks or logs after Close).
	done := make(chan struct{})
	if statsEvery > 0 {
		t := time.NewTicker(statsEvery)
		go func() {
			defer t.Stop()
			for {
				select {
				case <-t.C:
					names := srv.Collections()
					fmt.Printf("storerd: %d open collections %v\n", len(names), names)
				case <-done:
					return
				}
			}
		}()
	}

	err := srv.Serve()
	close(done)
	// Serve only returns once Close ran, and Close flushes and closes
	// every collection — the disk stores' durable shutdown.
	if err != cluster.ErrServerClosed {
		return err
	}
	return nil
}
