// Command freshsim reproduces the Section 4 analytics: the freshness
// evolution curves of Figure 7, the shadowing curves of Figure 8, the
// design-choice matrix of Table 2 (with the sensitivity example), and the
// optimal revisit-frequency curve of Figure 9 with the 10-23% freshness
// gain claim.
//
// Usage:
//
//	freshsim [-only fig7|fig8|table2|sensitivity|fig9]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"webevolve/internal/freshness"
	"webevolve/internal/report"
	"webevolve/internal/simweb"
)

func main() {
	only := flag.String("only", "", "run a single artifact: fig7, fig8, table2, sensitivity, fig9 or age")
	flag.Parse()
	if err := run(*only); err != nil {
		fmt.Fprintln(os.Stderr, "freshsim:", err)
		os.Exit(1)
	}
}

func run(only string) error {
	want := func(name string) bool { return only == "" || only == name }
	if want("fig7") {
		if err := fig7(); err != nil {
			return err
		}
	}
	if want("fig8") {
		if err := fig8(); err != nil {
			return err
		}
	}
	if want("table2") {
		if err := table2(); err != nil {
			return err
		}
	}
	if want("sensitivity") {
		sensitivity()
	}
	if want("fig9") {
		if err := fig9(); err != nil {
			return err
		}
	}
	if want("age") {
		if err := ageTable(); err != nil {
			return err
		}
	}
	return nil
}

// ageTable prints the Table 2 analog under [CGM99b]'s age metric; the
// paper remarks the conclusions match the freshness metric's.
func ageTable() error {
	fmt.Println("== Age metric: Table 2 analog (lower is better) ==")
	rng := rand.New(rand.NewSource(4))
	ages, err := freshness.AgeTable2(rng, 4, cycle, week, 2000, 24)
	if err != nil {
		return err
	}
	get := func(batch, shadow bool) string {
		return fmt.Sprintf("%.3f", ages[freshness.Design{Batch: batch, Shadow: shadow}])
	}
	rows := [][]string{
		{"In-place", get(false, false), get(true, false)},
		{"Shadowing", get(false, true), get(true, true)},
	}
	fmt.Println(report.Table([]string{"(months)", "Steady", "Batch-mode"}, rows))
	fmt.Println("ordering matches the freshness metric: in-place best, steady+shadow worst.")
	fmt.Println()
	return nil
}

// paper parameters: months as the time unit.
const (
	cycle  = 1.0      // one month
	week   = 7.0 / 30 // one week in months
	lambda = 1.0 / 4  // pages change every 4 months on average
	hot    = 4.0      // high change rate for the Figure 7/8 trend plots
)

func fig7() error {
	fmt.Println("== Figure 7: freshness evolution, batch-mode vs steady (in-place) ==")
	batch, steady, err := freshness.Figure7Series(hot, cycle, week, 3, 40)
	if err != nil {
		return err
	}
	toSeries := func(name string, pts []freshness.Point) report.Series {
		s := report.Series{Name: name}
		for _, p := range pts {
			s.X = append(s.X, p.T)
			s.Y = append(s.Y, p.F)
		}
		return s
	}
	fmt.Println("(a) batch-mode crawler (crawl occupies the first week of each month)")
	fmt.Println(report.Lines([]report.Series{toSeries("batch", batch)}, 72, 14))
	fmt.Println("(b) steady crawler")
	fmt.Println(report.Lines([]report.Series{toSeries("steady", steady)}, 72, 14))
	fmt.Printf("time-averaged freshness is identical for both: %s\n\n",
		report.F(freshness.SteadyInPlace(hot, cycle)))
	return nil
}

func fig8() error {
	fmt.Println("== Figure 8: freshness with shadowing (crawler's vs current collection) ==")
	sc, scur, bc, bcur, err := freshness.Figure8Series(hot, cycle, week, 3, 40)
	if err != nil {
		return err
	}
	toSeries := func(name string, pts []freshness.Point) report.Series {
		s := report.Series{Name: name}
		for _, p := range pts {
			s.X = append(s.X, p.T)
			s.Y = append(s.Y, p.F)
		}
		return s
	}
	fmt.Println("(a) steady crawler with shadowing")
	fmt.Println(report.Lines([]report.Series{toSeries("crawler's", sc), toSeries("current", scur)}, 72, 14))
	fmt.Println("(b) batch-mode crawler with shadowing")
	fmt.Println(report.Lines([]report.Series{toSeries("crawler's", bc), toSeries("current", bcur)}, 72, 14))
	return nil
}

func table2() error {
	fmt.Println("== Table 2: expected freshness of the current collection ==")
	fmt.Println("(pages change every 4 months; monthly cycle; 1-week batch crawl)")
	m, err := freshness.Table2(4, cycle, week)
	if err != nil {
		return err
	}
	get := func(batch, shadow bool) string {
		return fmt.Sprintf("%.2f", m[freshness.Design{Batch: batch, Shadow: shadow}])
	}
	rows := [][]string{
		{"In-place", get(false, false), get(true, false), "0.88 / 0.88"},
		{"Shadowing", get(false, true), get(true, true), "0.77 / 0.86"},
	}
	fmt.Println(report.Table([]string{"", "Steady", "Batch-mode", "paper (steady/batch)"}, rows))

	// Cross-validate the closed forms with a Monte-Carlo simulation.
	fmt.Println("Monte-Carlo cross-check (5000 pages, 240 cycles):")
	rng := rand.New(rand.NewSource(7))
	const n, horizon, warm = 5000, 24.0, 4.0
	rates := make([]float64, n)
	for i := range rates {
		rates[i] = lambda
	}
	type check struct {
		name  string
		sched freshness.SyncSchedule
		want  float64
	}
	checks := []check{
		{"steady/in-place", freshness.ScheduleSteadyInPlace(n, cycle, horizon), m[freshness.Design{}]},
		{"batch/in-place", freshness.ScheduleBatchInPlace(n, cycle, week, horizon), m[freshness.Design{Batch: true}]},
		{"steady/shadow", freshness.ScheduleSteadyShadow(n, cycle, horizon), m[freshness.Design{Shadow: true}]},
		{"batch/shadow", freshness.ScheduleBatchShadow(n, cycle, week, horizon), m[freshness.Design{Batch: true, Shadow: true}]},
	}
	for _, c := range checks {
		got, err := freshness.SimulateAvgFreshness(rng, rates, c.sched, warm, horizon, 200)
		if err != nil {
			return err
		}
		fmt.Printf("  %-16s analytic %.4f  simulated %.4f\n", c.name, c.want, got)
	}
	fmt.Println()
	return nil
}

func sensitivity() {
	fmt.Println("== Section 4 sensitivity example ==")
	fmt.Println("(pages change monthly; batch crawler operates the first 2 weeks of each month)")
	inPlace := freshness.BatchInPlace(1, 1)
	shadow := freshness.BatchShadow(1, 1, 0.5)
	fmt.Printf("  in-place: %.2f (paper 0.63)   shadowing: %.2f (paper 0.50)\n\n", inPlace, shadow)
}

func fig9() error {
	fmt.Println("== Figure 9: change frequency vs optimal revisit frequency ==")
	// Shape plot: rates spread over two decades around the revisit
	// budget, so the curve's rise and fall are both visible.
	var rates []float64
	for i := 0; i < 400; i++ {
		rates = append(rates, 0.02*pow(1.02, i))
	}
	budget := float64(len(rates)) // one visit per page per unit time
	pts, err := freshness.Figure9Curve(rates, budget)
	if err != nil {
		return err
	}
	s := report.Series{Name: "f* (optimal revisit frequency)"}
	for _, p := range pts {
		s.X = append(s.X, p.T)
		s.Y = append(s.Y, p.F)
	}
	fmt.Println(report.Lines([]report.Series{s}, 72, 16))
	fmt.Println("note the unimodal shape: revisit frequency rises with change")
	fmt.Println("frequency up to a point, then falls — very fast pages are not")
	fmt.Println("worth refreshing (the paper's p1/p2 example).")

	// Gain claim: use the web-like rate distribution measured in the
	// Section 3 experiment (the calibrated domain mixtures weighted by
	// Table 1's site counts) with a monthly-refresh budget, the paper's
	// operating point.
	webRates := mixtureSample(4000)
	fmt.Println("\ngain of optimal over uniform allocation on the web-like workload")
	fmt.Println("(paper/[CGM99b]: 10%-23%, larger when bandwidth is scarce):")
	for _, per := range []float64{10, 30, 60, 120, 240} {
		opt, uni, gain, err := freshness.AllocationGain(webRates, float64(len(webRates))/per)
		if err != nil {
			return err
		}
		fmt.Printf("  avg revisit every %4.0f days: optimal %.4f  uniform %.4f  gain %+.1f%%\n",
			per, opt, uni, 100*gain)
	}
	fmt.Println()
	return nil
}

// mixtureSample draws n change rates (changes/day) from the calibrated
// per-domain mixtures weighted by Table 1's site counts.
func mixtureSample(n int) []float64 {
	w, err := simweb.New(simweb.Config{
		Seed: 99,
		SitesPerDomain: map[simweb.Domain]int{
			simweb.Com: 13, simweb.Edu: 8, simweb.NetOrg: 3, simweb.Gov: 3,
		},
		PagesPerSite: (n + 26) / 27,
	})
	if err != nil {
		panic(err)
	}
	var rates []float64
	for _, s := range w.Sites() {
		for _, p := range s.AlivePages(0) {
			rates = append(rates, p.Rate())
			if len(rates) >= n {
				return rates
			}
		}
	}
	return rates
}

func pow(b float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= b
	}
	return out
}
