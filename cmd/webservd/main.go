// Command webservd is the serving-plane daemon: the HTTP read API
// (internal/serve) over a crawled repository. It is the consumer-facing
// half the crawl exists for — webcrawl keeps the collection fresh,
// webservd serves it.
//
// Usage:
//
//	webcrawl -seeds https://example.com/ -dir ./crawl -pages 50
//	webservd -dir ./crawl -listen 127.0.0.1:8080
//	curl http://127.0.0.1:8080/v1/pages/https://example.com/
//	curl http://127.0.0.1:8080/v1/estimates/https://example.com/
//	curl 'http://127.0.0.1:8080/v1/pages?prefix=https://example.com/&limit=10'
//	curl 'http://127.0.0.1:8080/v1/freshness?lambda=0.5&cycle=1'
//
// With -dir, webservd serves the crawl directory's disk collection and
// answers /v1/estimates from its state.json change histories (the
// paper's EP estimator over the crawler's own observations). With
// -store-server, it instead fronts a collection hosted by a storerd
// daemon over the cluster wire protocol — every read a wire round
// trip, softened by the hot-set cache; estimates are unavailable there
// (the histories belong to the crawler's state, not the repository).
//
// The daemon is read-only by construction: internal/serve sees the
// repository through store.Reader, which has no write methods.
//
// With -listen :0 the kernel assigns a port; the bound address is
// printed on stdout and, with -addr-file, written to a file that
// orchestration scripts can wait on. The address file is removed on
// shutdown, so waiters never race onto a stale address from a previous
// run.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"webevolve/internal/cluster"
	"webevolve/internal/crawlstate"
	"webevolve/internal/daemon"
	"webevolve/internal/obs"
	"webevolve/internal/serve"
	"webevolve/internal/store"
)

func main() {
	common := daemon.New("127.0.0.1:8080")
	dir := flag.String("dir", "", "crawl directory to serve (pages collection + state.json, as written by webcrawl)")
	storeServer := flag.String("store-server", "", "storerd endpoint hosting the collection (alternative to -dir)")
	collection := flag.String("collection", "pages", "collection name on the store server (with -store-server)")
	cacheEntries := flag.Int("cache-entries", 0, "hot-set cache entry bound (0: default 4096, negative: disable caching)")
	cacheBytes := flag.Int64("cache-bytes", 0, "hot-set cache byte bound (0: default 64 MiB)")
	flag.Parse()

	if (*dir == "") == (*storeServer == "") {
		fmt.Fprintln(os.Stderr, "webservd: exactly one of -dir or -store-server is required")
		flag.Usage()
		os.Exit(2)
	}
	if *storeServer != "" {
		ep, err := daemon.ParseEndpoint(*storeServer)
		if err != nil {
			fmt.Fprintln(os.Stderr, "webservd: -store-server:", err)
			os.Exit(2)
		}
		*storeServer = ep
	}
	if err := run(common, *dir, *storeServer, *collection, *cacheEntries, *cacheBytes); err != nil {
		daemon.Fatal("webservd", err)
	}
}

func run(common *daemon.Flags, dir, storeServer, collection string, cacheEntries int, cacheBytes int64) error {
	cfg := serve.Config{CacheEntries: cacheEntries, CacheBytes: cacheBytes}
	var reader store.Reader
	if dir != "" {
		disk, err := store.OpenDisk(filepath.Join(dir, "pages"))
		if err != nil {
			return err
		}
		defer disk.Close()
		reader = disk
		st, err := crawlstate.Load(filepath.Join(dir, "state.json"))
		if err != nil {
			return err
		}
		cfg.Epoch = st.Epoch
		cfg.Estimates = stateEstimates{st}
		fmt.Printf("webservd: serving crawl directory %s (%d pages, %d change histories)\n",
			dir, disk.Len(), len(st.Histories))
	} else {
		remote, err := cluster.DialStoreTCP(storeServer, cluster.Options{})
		if err != nil {
			return fmt.Errorf("dialing store server: %w", err)
		}
		defer remote.Close()
		coll := remote.Collection(collection)
		reader = coll
		fmt.Printf("webservd: serving collection %q from store server %s (%d pages)\n",
			collection, storeServer, coll.Len())
	}
	cfg.Source = serve.Static(reader)

	api := serve.New(cfg)
	ln, err := net.Listen("tcp", common.Listen)
	if err != nil {
		return err
	}
	addr := ln.Addr().String()
	fmt.Printf("webservd: serving on %s\n", addr)
	cleanup, err := common.Publish(addr)
	if err != nil {
		ln.Close()
		return err
	}
	defer cleanup()

	// Repository size as a live gauge; with -store-server each scrape
	// costs one wire round trip, same as the old ad-hoc stats line.
	obs.Default.GaugeFunc("webevolve_serve_pages",
		"pages in the served collection",
		func() float64 { return float64(reader.Len()) })
	stopDebug, err := common.ServeDebug("webservd")
	if err != nil {
		return err
	}
	defer stopDebug()

	httpSrv := &http.Server{Handler: api, ReadHeaderTimeout: 10 * time.Second}
	stopSig := daemon.OnShutdown(func(s os.Signal) {
		fmt.Printf("webservd: %v, shutting down\n", s)
		httpSrv.Close()
	})
	defer stopSig()
	stopStats := common.EveryStats("webservd")
	defer stopStats()

	if err := httpSrv.Serve(ln); err != http.ErrServerClosed {
		return err
	}
	return nil
}

// stateEstimates answers /v1/estimates from a crawl's state.json: the
// stored change histories run through the EP estimator, plus the
// crawler's own schedule for the page.
type stateEstimates struct {
	st *crawlstate.State
}

func (se stateEstimates) Estimate(url string) (serve.Estimate, bool) {
	r, ok := se.st.EstimateRate(url)
	if !ok {
		return serve.Estimate{}, false
	}
	est := serve.Estimate{
		URL:          url,
		Estimator:    r.Estimator,
		RatePerDay:   r.RatePerDay,
		IntervalDays: crawlstate.ReviseInterval(se.st.Histories[url]),
		Samples:      r.Samples,
		Changes:      r.Changes,
		LastVisitDay: r.LastVisitDay,
	}
	if due, ok := se.st.Due[url]; ok {
		est.NextDueDay = due
	}
	return est, true
}
