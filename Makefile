# Local mirror of the CI pipeline (.github/workflows/ci.yml):
# `make ci` runs exactly what a pull request must pass.

GO ?= go

.PHONY: build test race bench bench-smoke fmt vet smoke-cluster smoke-store smoke-serve smoke-tools ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Engine benchmarks, written machine-readable to BENCH_engine.json
# (benchmark name, iterations, ns/op, pages/s, B/op, allocs/op) so the
# perf trajectory is tracked run over run; CI archives the file.
# No pipe to tee here: /bin/sh has no pipefail, so a crashing benchmark
# would exit 0 through the pipe and CI would archive a garbage report.
bench:
	$(GO) test -bench 'BenchmarkEngine|BenchmarkCrawlEngine' -benchtime 5x \
		-benchmem -run '^$$' ./internal/core/ > bench_engine.txt || \
		{ cat bench_engine.txt; rm -f bench_engine.txt; exit 1; }
	$(GO) test -bench 'BenchmarkStore|BenchmarkEncodeEntries' -benchtime 5x \
		-benchmem -run '^$$' ./internal/cluster/ >> bench_engine.txt || \
		{ cat bench_engine.txt; rm -f bench_engine.txt; exit 1; }
	$(GO) test -bench 'BenchmarkServeQPS' -benchtime 5x \
		-benchmem -run '^$$' ./internal/serve/ >> bench_engine.txt || \
		{ cat bench_engine.txt; rm -f bench_engine.txt; exit 1; }
	$(GO) test -bench 'BenchmarkServeHotGet' -benchtime 2000x \
		-benchmem -run '^$$' ./internal/serve/ >> bench_engine.txt || \
		{ cat bench_engine.txt; rm -f bench_engine.txt; exit 1; }
	$(GO) test -bench 'BenchmarkFrontierScale' -benchtime 1x \
		-benchmem -run '^$$' ./internal/frontier/ >> bench_engine.txt || \
		{ cat bench_engine.txt; rm -f bench_engine.txt; exit 1; }
	@cat bench_engine.txt
	$(GO) run ./internal/tools/benchjson < bench_engine.txt > BENCH_engine.json
	@rm -f bench_engine.txt
	@echo wrote BENCH_engine.json

# One iteration per benchmark: a compile-and-run smoke pass over every
# benchmark in the repo, not a measurement. -short skips the minute-long
# 10M frontier-scale case, which `bench` measures for real.
bench-smoke:
	$(GO) test -short -bench . -benchtime=1x -run '^$$' ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Multi-process smoke: two shardd daemons on loopback, then a crawl
# with -shard-servers whose output must be byte-identical to the local
# run.
smoke-cluster:
	./scripts/cluster_smoke.sh

# Multi-process store smoke: a storerd daemon on loopback, crawlsim and
# a live-HTTP webcrawl with -store-server byte-identical to their
# local-store runs, plus collection persistence across a daemon
# restart.
smoke-store:
	./scripts/store_smoke.sh

# Serving-plane smoke: crawl a static site, then serve the repository
# back out through webservd (crawl dir), storerd -serve, and webservd
# -store-server; served bodies must be byte-identical to the site
# files, with working ETag/304s, paged listing, and estimates.
smoke-serve:
	./scripts/serve_smoke.sh

# Flag-wiring sanity for the analytic binaries: freshsim and webevo
# build in CI but had no run coverage, so a refactor of the shared
# packages could break their wiring silently. A reduced workload and a
# zero exit is all this asserts — their numeric output is covered by
# the internal/freshness and internal/experiment tests.
smoke-tools:
	$(GO) run ./cmd/freshsim >/dev/null
	$(GO) run ./cmd/webevo -pages 60 -days 30 >/dev/null

ci: build vet fmt race bench-smoke bench smoke-cluster smoke-store smoke-serve smoke-tools
