# Local mirror of the CI pipeline (.github/workflows/ci.yml):
# `make ci` runs exactly what a pull request must pass.

GO ?= go

.PHONY: build test race bench fmt vet smoke-cluster ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: a compile-and-run smoke pass, not a
# measurement. Use `go test -bench . ./...` for real numbers.
bench:
	$(GO) test -bench . -benchtime=1x -run '^$$' ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Multi-process smoke: two shardd daemons on loopback, then a crawl
# with -shard-servers whose output must be byte-identical to the local
# run.
smoke-cluster:
	./scripts/cluster_smoke.sh

ci: build vet fmt race bench smoke-cluster
