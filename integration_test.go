package webevolve_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"

	"webevolve/internal/core"
	"webevolve/internal/experiment"
	"webevolve/internal/fetch"
	"webevolve/internal/freshness"
	"webevolve/internal/robots"
	"webevolve/internal/simweb"
	"webevolve/internal/store"
)

// TestCrawlerMatchesClosedFormFreshness is the strongest end-to-end
// validation in the repository: a real crawl (engine, frontier, store,
// fetcher, simulator) over a single-rate immortal web must reproduce the
// Section 4 closed form FBar(lambda*T) for a steady in-place
// fixed-frequency crawler.
func TestCrawlerMatchesClosedFormFreshness(t *testing.T) {
	const (
		intervalDays = 20.0 // every page changes every 20 days on average
		cycleDays    = 10.0 // every page revisited every 10 days
	)
	w, err := simweb.New(simweb.Config{
		Seed:           123,
		SitesPerDomain: map[simweb.Domain]int{simweb.Com: 4},
		PagesPerSite:   100,
		Mixtures: map[simweb.Domain]simweb.Mixture{
			simweb.Com: {{Name: "only", Weight: 1,
				MinIntervalDays: intervalDays, MaxIntervalDays: intervalDays + 1e-6}},
		},
		LifespanMeanDays: map[simweb.Domain]float64{simweb.Com: -1}, // immortal
	})
	if err != nil {
		t.Fatal(err)
	}
	size := 400
	cfg := core.Config{
		Seeds:          w.RootURLs(),
		CollectionSize: size,
		PagesPerDay:    float64(size) / cycleDays,
		CycleDays:      cycleDays,
		RankEveryDays:  cycleDays,
		Mode:           core.Steady,
		Update:         core.InPlace,
		Freq:           core.FixedFreq,
		Estimator:      core.EstimatorEP,
	}
	c, err := core.New(cfg, fetch.NewSimFetcher(w))
	if err != nil {
		t.Fatal(err)
	}
	ev := &core.Evaluator{Web: w}
	got, _, err := ev.TimeAveragedFreshness(c, 150, 30, 48, size)
	if err != nil {
		t.Fatal(err)
	}
	want := freshness.SteadyInPlace(1/intervalDays, cycleDays) // FBar(0.5) = 0.787
	if diff := got - want; diff > 0.05 || diff < -0.05 {
		t.Fatalf("measured freshness %.4f, closed form %.4f", got, want)
	}
}

// TestMonitorRecoversMixtureWeights ties the experiment harness to the
// simulator's ground truth: the measured daily-change fraction must be
// close to the configured daily-class weight.
func TestMonitorRecoversMixtureWeights(t *testing.T) {
	const dailyWeight = 0.3
	w, err := simweb.New(simweb.Config{
		Seed:           9,
		SitesPerDomain: map[simweb.Domain]int{simweb.Com: 5},
		PagesPerSite:   120,
		Mixtures: map[simweb.Domain]simweb.Mixture{
			simweb.Com: {
				{Name: "hot", Weight: dailyWeight, MinIntervalDays: 0.02, MaxIntervalDays: 0.05},
				{Name: "cold", Weight: 1 - dailyWeight, MinIntervalDays: 500, MaxIntervalDays: 1000},
			},
		},
		LifespanMeanDays: map[simweb.Domain]float64{simweb.Com: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	obs, err := experiment.Monitor(w, experiment.MonitorConfig{Days: 60})
	if err != nil {
		t.Fatal(err)
	}
	got := obs.Figure2().Overall.Fractions()[0]
	if got < dailyWeight-0.05 || got > dailyWeight+0.05 {
		t.Fatalf("measured daily fraction %.3f, configured %.3f", got, dailyWeight)
	}
}

// TestCrawlerRestartsFromDisk exercises crawl -> crash -> reopen across
// the engine and the log-structured store.
func TestCrawlerRestartsFromDisk(t *testing.T) {
	w, err := simweb.New(simweb.SmallConfig(77))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	gen := 0
	newShadow := func() (store.Collection, error) {
		gen++
		return store.OpenDisk(filepath.Join(dir, fmt.Sprintf("gen%02d", gen)))
	}
	sh, err := store.NewShadowed(nil, newShadow)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Seeds:          w.RootURLs(),
		CollectionSize: 100,
		PagesPerDay:    100,
		CycleDays:      5,
	}
	c, err := core.NewWithStore(cfg, fetch.NewSimFetcher(w), sh)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntil(4); err != nil {
		t.Fatal(err)
	}
	want := c.Collection().Len()
	urls := c.Collection().URLs()
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": reopen the current generation's directory cold.
	reopened, err := store.OpenDisk(filepath.Join(dir, "gen01"))
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.Len() != want {
		t.Fatalf("recovered %d pages, want %d", reopened.Len(), want)
	}
	for _, u := range urls {
		if _, ok, err := reopened.Get(u); err != nil || !ok {
			t.Fatalf("lost %s across restart (ok=%v err=%v)", u, ok, err)
		}
	}
}

// TestLiveHTTPIncrementalCrawl drives the full engine over a real HTTP
// server: discovery via link extraction, robots respected, change
// detection across revisits.
func TestLiveHTTPIncrementalCrawl(t *testing.T) {
	var rev atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/robots.txt", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "User-agent: *\nDisallow: /secret")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<html><a href="/news">n</a><a href="/static">s</a><a href="/secret">x</a></html>`)
	})
	mux.HandleFunc("/news", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "<html>rev %d</html>", rev.Add(1))
	})
	mux.HandleFunc("/static", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "<html>immutable</html>")
	})
	var secretHits atomic.Int64
	mux.HandleFunc("/secret", func(w http.ResponseWriter, r *http.Request) {
		secretHits.Add(1)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	f := &fetch.HTTPFetcher{Politeness: robots.Politeness{}}
	cfg := core.Config{
		Seeds:           []string{srv.URL + "/"},
		CollectionSize:  10,
		PagesPerDay:     1e6, // virtual pacing; wall time is instant
		CycleDays:       0.01,
		MinIntervalDays: 0.001,
		RankEveryDays:   0.01,
	}
	c, err := core.New(cfg, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntil(0.1); err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.Fetches < 6 {
		t.Fatalf("only %d fetches", m.Fetches)
	}
	if m.ChangesDetected == 0 {
		t.Fatal("news page changes not detected across revisits")
	}
	if secretHits.Load() != 0 {
		t.Fatal("robots-disallowed page was fetched")
	}
	if _, ok, _ := c.Collection().Get(srv.URL + "/static"); !ok {
		t.Fatal("static page not collected")
	}
}

// TestSelectionFeedsMonitoring chains Table 1 site selection into the
// monitoring experiment: monitoring only the *selected* sites must still
// produce the domain orderings.
func TestSelectionFeedsMonitoring(t *testing.T) {
	w, err := simweb.New(simweb.Config{
		Seed: 31,
		SitesPerDomain: map[simweb.Domain]int{
			simweb.Com: 20, simweb.Edu: 12, simweb.NetOrg: 5, simweb.Gov: 5,
		},
		PagesPerSite: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := experiment.SelectSites(w, experiment.SelectionConfig{
		CandidateCount: 30, KeepCount: 20, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Selected) != 20 {
		t.Fatalf("selected %d sites", len(sel.Selected))
	}
	// All selected hosts must exist and be monitorable.
	for _, s := range sel.Selected {
		if _, ok := w.SiteByHost(s.ID); !ok {
			t.Fatalf("selected nonexistent site %s", s.ID)
		}
	}
	obs, err := experiment.Monitor(w, experiment.MonitorConfig{Days: 40})
	if err != nil {
		t.Fatal(err)
	}
	if obs.NumPages() == 0 {
		t.Fatal("monitoring saw no pages")
	}
}

// TestShadowVsInPlaceEndToEndOrdering reruns the Table 2 ordering on the
// full engine at moderate scale: steady in-place must beat steady shadow
// by a visible margin, while batch in-place vs batch shadow are close.
func TestShadowVsInPlaceEndToEndOrdering(t *testing.T) {
	run := func(mode core.Mode, upd core.UpdateStyle) float64 {
		w, err := simweb.New(simweb.Config{
			Seed: 55,
			SitesPerDomain: map[simweb.Domain]int{
				simweb.Com: 6, simweb.Edu: 4, simweb.NetOrg: 1, simweb.Gov: 1,
			},
			PagesPerSite: 60,
		})
		if err != nil {
			t.Fatal(err)
		}
		const size = 400
		cfg := core.Config{
			Seeds:          w.RootURLs(),
			CollectionSize: size,
			PagesPerDay:    size / 10.0,
			CycleDays:      10,
			BatchDays:      2,
			Mode:           mode,
			Update:         upd,
		}
		c, err := core.New(cfg, fetch.NewSimFetcher(w))
		if err != nil {
			t.Fatal(err)
		}
		ev := &core.Evaluator{Web: w}
		avg, _, err := ev.TimeAveragedFreshness(c, 80, 20, 24, size)
		if err != nil {
			t.Fatal(err)
		}
		return avg
	}
	steadyIn := run(core.Steady, core.InPlace)
	steadySh := run(core.Steady, core.Shadow)
	batchIn := run(core.Batch, core.InPlace)
	batchSh := run(core.Batch, core.Shadow)

	if steadySh >= steadyIn {
		t.Fatalf("steady: shadow %.3f >= in-place %.3f", steadySh, steadyIn)
	}
	steadyGap := steadyIn - steadySh
	batchGap := batchIn - batchSh
	if batchGap > steadyGap {
		t.Fatalf("shadowing cost batch (%.3f) more than steady (%.3f) — contradicts Section 4",
			batchGap, steadyGap)
	}
}
