#!/usr/bin/env bash
# Multi-process store smoke (run by `make ci` / the CI workflow), in
# two phases:
#
#  1. Determinism: launch a storerd daemon, run the same simulated
#     crawl once with local in-memory collections and once with
#     -store-server, and require byte-identical output — the remote
#     repository's determinism contract, checked across real process
#     and TCP boundaries.
#
#  2. Live crawl + persistence: serve a tiny static site over loopback
#     HTTP, crawl it with webcrawl against a local disk store and
#     against a disk-backed storerd, and require byte-identical crawler
#     output; then restart storerd from the same -dir and require the
#     collection to have survived the daemon restart.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
cleanup() {
    kill $(jobs -p) 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp" ./cmd/storerd ./cmd/crawlsim ./cmd/webcrawl ./scripts/smokesite

wait_addr() {
    for _ in $(seq 1 100); do
        if [ -f "$1" ]; then return 0; fi
        sleep 0.1
    done
    echo "store-smoke: $1 did not appear (daemon failed to come up)" >&2
    exit 1
}

# ---- Phase 1: simulated-crawl determinism ----------------------------

"$tmp/storerd" -listen 127.0.0.1:0 -addr-file "$tmp/s1.addr" &
wait_addr "$tmp/s1.addr"
store1="$(cat "$tmp/s1.addr")"
echo "store-smoke: storerd on $store1"

"$tmp/crawlsim" -days 30 -size 300 >"$tmp/local.out"
"$tmp/crawlsim" -days 30 -size 300 -store-server "$store1" >"$tmp/remote.out"

diff "$tmp/local.out" "$tmp/remote.out"
echo "store-smoke: remote-store crawl output is byte-identical to local"

# ---- Phase 2: live HTTP crawl + restart persistence ------------------

# A tiny interlinked site: the hermetic "live web" webcrawl fetches.
mkdir -p "$tmp/site"
cat >"$tmp/site/index.html" <<'EOF'
<html><body>
<a href="/a.html">a</a> <a href="/b.html">b</a>
</body></html>
EOF
cat >"$tmp/site/a.html" <<'EOF'
<html><body><a href="/c.html">c</a> <a href="/index.html">home</a></body></html>
EOF
cat >"$tmp/site/b.html" <<'EOF'
<html><body><a href="/c.html">c</a></body></html>
EOF
cat >"$tmp/site/c.html" <<'EOF'
<html><body>leaf page</body></html>
EOF

"$tmp/smokesite" -root "$tmp/site" -addr-file "$tmp/site.addr" &
wait_addr "$tmp/site.addr"
site="$(cat "$tmp/site.addr")"

"$tmp/storerd" -listen 127.0.0.1:0 -addr-file "$tmp/s2.addr" -dir "$tmp/storedata" &
s2_pid=$!
wait_addr "$tmp/s2.addr"
store2="$(cat "$tmp/s2.addr")"
echo "store-smoke: static site on $site, disk-backed storerd on $store2"

# One worker and a tiny delay keep the fetch (and print) order
# deterministic, so local-store and remote-store runs diff clean.
crawl="-seeds http://$site/ -pages 10 -delay 20ms -workers 1"
"$tmp/webcrawl" $crawl -dir "$tmp/crawl-local" >"$tmp/crawl-local.out"
"$tmp/webcrawl" $crawl -dir "$tmp/crawl-remote" -store-server "$store2" >"$tmp/crawl-remote.out"

diff "$tmp/crawl-local.out" "$tmp/crawl-remote.out"
echo "store-smoke: webcrawl output against storerd is byte-identical to the local disk store"

pages="$(sed -n 's/.*collection holds \([0-9]*\)$/\1/p' "$tmp/crawl-remote.out")"
if [ -z "$pages" ] || [ "$pages" -lt 4 ]; then
    echo "store-smoke: expected >= 4 stored pages, got '$pages'" >&2
    cat "$tmp/crawl-remote.out" >&2
    exit 1
fi

# Restart the daemon from the same directory: the collection must
# survive (flushed batches + replay, including any swept tail).
kill "$s2_pid"
wait "$s2_pid" 2>/dev/null || true
rm -f "$tmp/s2.addr"
"$tmp/storerd" -listen 127.0.0.1:0 -addr-file "$tmp/s2.addr" -dir "$tmp/storedata" &
wait_addr "$tmp/s2.addr"
store2="$(cat "$tmp/s2.addr")"

"$tmp/webcrawl" $crawl -dir "$tmp/crawl-remote" -store-server "$store2" >"$tmp/crawl-again.out"
if ! grep -q "collection holds $pages" "$tmp/crawl-again.out"; then
    echo "store-smoke: collection did not survive the storerd restart" >&2
    cat "$tmp/crawl-again.out" >&2
    exit 1
fi
echo "store-smoke: collection ($pages pages) survived the storerd restart"
