// Command smokesite is a minimal static file server for the smoke
// scripts: it serves a directory over HTTP on a kernel-assigned port
// and writes the bound address to a file orchestration can wait on —
// the loopback "live web" that lets scripts/store_smoke.sh exercise
// webcrawl (a real HTTP crawler) hermetically inside CI.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
)

func main() {
	root := flag.String("root", ".", "directory to serve")
	listen := flag.String("listen", "127.0.0.1:0", "host:port to serve on (:0 for an assigned port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	flag.Parse()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smokesite:", err)
		os.Exit(1)
	}
	addr := ln.Addr().String()
	fmt.Printf("smokesite: serving %s on %s\n", *root, addr)
	if *addrFile != "" {
		// Write-then-rename so waiters never read a partial address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "smokesite:", err)
			os.Exit(1)
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			fmt.Fprintln(os.Stderr, "smokesite:", err)
			os.Exit(1)
		}
	}
	if err := http.Serve(ln, http.FileServer(http.Dir(*root))); err != nil {
		fmt.Fprintln(os.Stderr, "smokesite:", err)
		os.Exit(1)
	}
}
