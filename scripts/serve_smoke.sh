#!/usr/bin/env bash
# Serving-plane smoke (run by `make ci` / the CI workflow): crawl a
# tiny static site over loopback HTTP, then serve the crawled
# repository back out through every serving configuration and require
# the served bodies to be byte-identical to the site files the crawler
# fetched:
#
#  1. webservd over the crawl directory (disk collection + state.json:
#     pages, conditional requests, listing, estimates, stats).
#  2. storerd -serve: the HTTP read API embedded in the store daemon,
#     reading the same live collection a -store-server crawl wrote.
#  3. webservd -store-server: the HTTP API fronting the repository over
#     the cluster wire protocol.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
cleanup() {
    kill $(jobs -p) 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp" ./cmd/webcrawl ./cmd/webservd ./cmd/storerd ./scripts/smokesite ./internal/tools/promcheck

wait_addr() {
    for _ in $(seq 1 100); do
        if [ -f "$1" ]; then return 0; fi
        sleep 0.1
    done
    echo "serve-smoke: $1 did not appear (daemon failed to come up)" >&2
    exit 1
}

# http <url> [curl args...]: GET url, body on stdout, headers in
# $tmp/headers, status code in $tmp/status.
http() {
    local url="$1"; shift
    curl -sS -D "$tmp/headers" -o "$tmp/body" -w '%{http_code}' "$@" "$url" >"$tmp/status"
}

expect_status() {
    if [ "$(cat "$tmp/status")" != "$1" ]; then
        echo "serve-smoke: $2: status $(cat "$tmp/status"), want $1" >&2
        cat "$tmp/headers" "$tmp/body" >&2
        exit 1
    fi
}

# ---- The site and the crawl ------------------------------------------

mkdir -p "$tmp/site"
cat >"$tmp/site/index.html" <<'EOF'
<html><body>
<a href="/a.html">a</a> <a href="/b.html">b</a>
</body></html>
EOF
cat >"$tmp/site/a.html" <<'EOF'
<html><body><a href="/c.html">c</a> <a href="/index.html">home</a></body></html>
EOF
cat >"$tmp/site/b.html" <<'EOF'
<html><body><a href="/c.html">c</a></body></html>
EOF
cat >"$tmp/site/c.html" <<'EOF'
<html><body>leaf page</body></html>
EOF

"$tmp/smokesite" -root "$tmp/site" -addr-file "$tmp/site.addr" &
wait_addr "$tmp/site.addr"
site="$(cat "$tmp/site.addr")"
echo "serve-smoke: static site on $site"

# The crawl runs in the background with its own debug listener and a
# JSONL trace file: the per-host delay keeps it alive long enough to
# scrape /metrics mid-crawl, the well-formedness gate that fails
# `make ci` on malformed exposition.
"$tmp/webcrawl" -seeds "http://$site/" -pages 10 -delay 150ms -workers 1 \
    -dir "$tmp/crawl" -metrics-listen 127.0.0.1:0 -metrics-addr-file "$tmp/c.maddr" \
    -trace "$tmp/crawl.trace" >"$tmp/crawl.out" &
crawl_pid=$!
wait_addr "$tmp/c.maddr"
cm="$(cat "$tmp/c.maddr")"
scraped=""
for _ in $(seq 1 100); do
    if curl -s "http://$cm/metrics" >"$tmp/c.metrics" 2>/dev/null &&
        "$tmp/promcheck" -require webevolve_dispatch_jobs_total,webevolve_dispatch_groups_total \
            <"$tmp/c.metrics" >/dev/null 2>&1; then
        scraped=1
        break
    fi
    sleep 0.05
done
wait "$crawl_pid"
if [ -z "$scraped" ]; then
    echo "serve-smoke: never scraped live dispatch metrics from webcrawl" >&2
    cat "$tmp/c.metrics" >&2 || true
    exit 1
fi
echo "serve-smoke: scraped webcrawl /metrics mid-crawl (dispatch counters live)"
if ! grep -q '"name":"fetch_url"' "$tmp/crawl.trace"; then
    echo "serve-smoke: crawl trace file has no fetch spans" >&2
    head "$tmp/crawl.trace" >&2 || true
    exit 1
fi
echo "serve-smoke: JSONL trace file carries fetch spans"

# ---- Phase 1: webservd over the crawl directory ----------------------

"$tmp/webservd" -dir "$tmp/crawl" -listen 127.0.0.1:0 -addr-file "$tmp/w.addr" \
    -metrics-listen 127.0.0.1:0 -metrics-addr-file "$tmp/w.maddr" &
wait_addr "$tmp/w.addr"
wait_addr "$tmp/w.maddr"
ws="$(cat "$tmp/w.addr")"
wm="$(cat "$tmp/w.maddr")"
echo "serve-smoke: webservd on $ws (metrics on $wm)"

# Every crawled page must be served byte-identical to the site file.
for p in a.html b.html c.html; do
    http "http://$ws/v1/pages/http://$site/$p"
    expect_status 200 "GET $p"
    diff "$tmp/site/$p" "$tmp/body"
done
# The seed is stored under its normalized URL (trailing slash).
http "http://$ws/v1/pages/http://$site/"
expect_status 200 "GET /"
diff "$tmp/site/index.html" "$tmp/body"
echo "serve-smoke: all served bodies are byte-identical to the site files"

# Conditional requests: the returned ETag must convert the same GET
# into a 304, and a bogus tag must not.
etag="$(sed -n 's/^[Ee][Tt]ag: \(.*\)\r$/\1/p' "$tmp/headers")"
if [ -z "$etag" ]; then
    echo "serve-smoke: no ETag on page response" >&2
    cat "$tmp/headers" >&2
    exit 1
fi
http "http://$ws/v1/pages/http://$site/" -H "If-None-Match: $etag"
expect_status 304 "conditional GET with matching ETag"
http "http://$ws/v1/pages/http://$site/" -H 'If-None-Match: "feedface"'
expect_status 200 "conditional GET with stale ETag"
echo "serve-smoke: ETag round trip works ($etag -> 304)"

# Paged listing: two pages of 2 with a resume cursor walk all 4 URLs.
http "http://$ws/v1/pages?limit=2"
expect_status 200 listing
next="$(sed -n 's/.*"next":"\([^"]*\)".*/\1/p' "$tmp/body")"
count1="$(sed -n 's/.*"count":\([0-9]*\).*/\1/p' "$tmp/body")"
http "http://$ws/v1/pages?limit=2&after=$next"
expect_status 200 "listing resume"
count2="$(sed -n 's/.*"count":\([0-9]*\).*/\1/p' "$tmp/body")"
if [ "$count1" != 2 ] || [ "$count2" != 2 ]; then
    echo "serve-smoke: paged listing returned $count1 + $count2 pages, want 2 + 2" >&2
    exit 1
fi
echo "serve-smoke: paged listing resumes across the cursor"

# Estimates come from the crawl's own change histories.
http "http://$ws/v1/estimates/http://$site/"
expect_status 200 estimate
grep -q '"estimator"' "$tmp/body"

http "http://$ws/v1/freshness?lambda=0.5&cycle=1"
expect_status 200 freshness
grep -q '"steadyInPlace"' "$tmp/body"

http "http://$ws/healthz"
expect_status 200 healthz
http "http://$ws/v1/stats"
expect_status 200 stats
grep -q '"pages":5' "$tmp/body"
echo "serve-smoke: estimates, freshness, stats and healthz respond"

# The debug listener mirrors the request counters /v1/stats reports,
# plus the repository gauge; promcheck gates the exposition format.
curl -sS "http://$wm/metrics" >"$tmp/w.metrics"
"$tmp/promcheck" \
    -require webevolve_serve_requests_total,webevolve_serve_responses_total,webevolve_serve_pages \
    <"$tmp/w.metrics"
http "http://$wm/debug/trace"
expect_status 200 "webservd /debug/trace"
echo "serve-smoke: webservd /metrics is well-formed with live serve counters"

kill %2 && wait %2 2>/dev/null || true   # webservd

# ---- Phase 2: storerd -serve (embedded HTTP API, live collection) ----

"$tmp/storerd" -listen 127.0.0.1:0 -addr-file "$tmp/s.addr" -dir "$tmp/storedata" \
    -serve 127.0.0.1:0 -serve-addr-file "$tmp/sh.addr" \
    -metrics-listen 127.0.0.1:0 -metrics-addr-file "$tmp/s.maddr" &
wait_addr "$tmp/s.addr"
wait_addr "$tmp/sh.addr"
store="$(cat "$tmp/s.addr")"
shttp="$(cat "$tmp/sh.addr")"
echo "serve-smoke: storerd on $store, embedded HTTP API on $shttp"

"$tmp/webcrawl" -seeds "http://$site/" -pages 10 -delay 20ms -workers 1 \
    -dir "$tmp/crawl2" -store-server "$store" >"$tmp/crawl2.out"

for p in a.html c.html; do
    http "http://$shttp/v1/pages/http://$site/$p"
    expect_status 200 "storerd GET $p"
    diff "$tmp/site/$p" "$tmp/body"
done
etag="$(sed -n 's/^[Ee][Tt]ag: \(.*\)\r$/\1/p' "$tmp/headers")"
http "http://$shttp/v1/pages/http://$site/c.html" -H "If-None-Match: $etag"
expect_status 304 "storerd conditional GET"
# The repository daemon has no crawl histories: estimates are a 501.
http "http://$shttp/v1/estimates/http://$site/"
expect_status 501 "storerd estimate"
echo "serve-smoke: storerd-embedded API serves the crawled collection (304s included)"

# One scrape shows all three planes of the store daemon at work: the
# wire ops the crawl sent, the disk puts they became, and the HTTP
# requests the embedded API answered.
wait_addr "$tmp/s.maddr"
sm="$(cat "$tmp/s.maddr")"
curl -sS "http://$sm/metrics" >"$tmp/s.metrics"
"$tmp/promcheck" \
    -require webevolve_cluster_server_ops_total,webevolve_store_puts_total,webevolve_serve_requests_total \
    <"$tmp/s.metrics"
echo "serve-smoke: storerd /metrics spans wire, store and serve families"

# ---- Phase 3: webservd fronting storerd over the wire ----------------

"$tmp/webservd" -store-server "$store" -listen 127.0.0.1:0 -addr-file "$tmp/w2.addr" &
wait_addr "$tmp/w2.addr"
ws2="$(cat "$tmp/w2.addr")"

http "http://$ws2/v1/pages/http://$site/b.html"
expect_status 200 "remote-backed GET"
diff "$tmp/site/b.html" "$tmp/body"
http "http://$ws2/v1/stats"
expect_status 200 "remote-backed stats"
grep -q '"pages":5' "$tmp/body"
echo "serve-smoke: webservd -store-server serves the same bytes over the wire"

echo "serve-smoke: OK"
