#!/usr/bin/env bash
# Serving-plane smoke (run by `make ci` / the CI workflow): crawl a
# tiny static site over loopback HTTP, then serve the crawled
# repository back out through every serving configuration and require
# the served bodies to be byte-identical to the site files the crawler
# fetched:
#
#  1. webservd over the crawl directory (disk collection + state.json:
#     pages, conditional requests, listing, estimates, stats).
#  2. storerd -serve: the HTTP read API embedded in the store daemon,
#     reading the same live collection a -store-server crawl wrote.
#  3. webservd -store-server: the HTTP API fronting the repository over
#     the cluster wire protocol.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
cleanup() {
    kill $(jobs -p) 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp" ./cmd/webcrawl ./cmd/webservd ./cmd/storerd ./scripts/smokesite

wait_addr() {
    for _ in $(seq 1 100); do
        if [ -f "$1" ]; then return 0; fi
        sleep 0.1
    done
    echo "serve-smoke: $1 did not appear (daemon failed to come up)" >&2
    exit 1
}

# http <url> [curl args...]: GET url, body on stdout, headers in
# $tmp/headers, status code in $tmp/status.
http() {
    local url="$1"; shift
    curl -sS -D "$tmp/headers" -o "$tmp/body" -w '%{http_code}' "$@" "$url" >"$tmp/status"
}

expect_status() {
    if [ "$(cat "$tmp/status")" != "$1" ]; then
        echo "serve-smoke: $2: status $(cat "$tmp/status"), want $1" >&2
        cat "$tmp/headers" "$tmp/body" >&2
        exit 1
    fi
}

# ---- The site and the crawl ------------------------------------------

mkdir -p "$tmp/site"
cat >"$tmp/site/index.html" <<'EOF'
<html><body>
<a href="/a.html">a</a> <a href="/b.html">b</a>
</body></html>
EOF
cat >"$tmp/site/a.html" <<'EOF'
<html><body><a href="/c.html">c</a> <a href="/index.html">home</a></body></html>
EOF
cat >"$tmp/site/b.html" <<'EOF'
<html><body><a href="/c.html">c</a></body></html>
EOF
cat >"$tmp/site/c.html" <<'EOF'
<html><body>leaf page</body></html>
EOF

"$tmp/smokesite" -root "$tmp/site" -addr-file "$tmp/site.addr" &
wait_addr "$tmp/site.addr"
site="$(cat "$tmp/site.addr")"
echo "serve-smoke: static site on $site"

"$tmp/webcrawl" -seeds "http://$site/" -pages 10 -delay 20ms -workers 1 \
    -dir "$tmp/crawl" >"$tmp/crawl.out"

# ---- Phase 1: webservd over the crawl directory ----------------------

"$tmp/webservd" -dir "$tmp/crawl" -listen 127.0.0.1:0 -addr-file "$tmp/w.addr" &
wait_addr "$tmp/w.addr"
ws="$(cat "$tmp/w.addr")"
echo "serve-smoke: webservd on $ws"

# Every crawled page must be served byte-identical to the site file.
for p in a.html b.html c.html; do
    http "http://$ws/v1/pages/http://$site/$p"
    expect_status 200 "GET $p"
    diff "$tmp/site/$p" "$tmp/body"
done
# The seed is stored under its normalized URL (trailing slash).
http "http://$ws/v1/pages/http://$site/"
expect_status 200 "GET /"
diff "$tmp/site/index.html" "$tmp/body"
echo "serve-smoke: all served bodies are byte-identical to the site files"

# Conditional requests: the returned ETag must convert the same GET
# into a 304, and a bogus tag must not.
etag="$(sed -n 's/^[Ee][Tt]ag: \(.*\)\r$/\1/p' "$tmp/headers")"
if [ -z "$etag" ]; then
    echo "serve-smoke: no ETag on page response" >&2
    cat "$tmp/headers" >&2
    exit 1
fi
http "http://$ws/v1/pages/http://$site/" -H "If-None-Match: $etag"
expect_status 304 "conditional GET with matching ETag"
http "http://$ws/v1/pages/http://$site/" -H 'If-None-Match: "feedface"'
expect_status 200 "conditional GET with stale ETag"
echo "serve-smoke: ETag round trip works ($etag -> 304)"

# Paged listing: two pages of 2 with a resume cursor walk all 4 URLs.
http "http://$ws/v1/pages?limit=2"
expect_status 200 listing
next="$(sed -n 's/.*"next":"\([^"]*\)".*/\1/p' "$tmp/body")"
count1="$(sed -n 's/.*"count":\([0-9]*\).*/\1/p' "$tmp/body")"
http "http://$ws/v1/pages?limit=2&after=$next"
expect_status 200 "listing resume"
count2="$(sed -n 's/.*"count":\([0-9]*\).*/\1/p' "$tmp/body")"
if [ "$count1" != 2 ] || [ "$count2" != 2 ]; then
    echo "serve-smoke: paged listing returned $count1 + $count2 pages, want 2 + 2" >&2
    exit 1
fi
echo "serve-smoke: paged listing resumes across the cursor"

# Estimates come from the crawl's own change histories.
http "http://$ws/v1/estimates/http://$site/"
expect_status 200 estimate
grep -q '"estimator"' "$tmp/body"

http "http://$ws/v1/freshness?lambda=0.5&cycle=1"
expect_status 200 freshness
grep -q '"steadyInPlace"' "$tmp/body"

http "http://$ws/healthz"
expect_status 200 healthz
http "http://$ws/v1/stats"
expect_status 200 stats
grep -q '"pages":5' "$tmp/body"
echo "serve-smoke: estimates, freshness, stats and healthz respond"

kill %2 && wait %2 2>/dev/null || true   # webservd

# ---- Phase 2: storerd -serve (embedded HTTP API, live collection) ----

"$tmp/storerd" -listen 127.0.0.1:0 -addr-file "$tmp/s.addr" -dir "$tmp/storedata" \
    -serve 127.0.0.1:0 -serve-addr-file "$tmp/sh.addr" &
wait_addr "$tmp/s.addr"
wait_addr "$tmp/sh.addr"
store="$(cat "$tmp/s.addr")"
shttp="$(cat "$tmp/sh.addr")"
echo "serve-smoke: storerd on $store, embedded HTTP API on $shttp"

"$tmp/webcrawl" -seeds "http://$site/" -pages 10 -delay 20ms -workers 1 \
    -dir "$tmp/crawl2" -store-server "$store" >"$tmp/crawl2.out"

for p in a.html c.html; do
    http "http://$shttp/v1/pages/http://$site/$p"
    expect_status 200 "storerd GET $p"
    diff "$tmp/site/$p" "$tmp/body"
done
etag="$(sed -n 's/^[Ee][Tt]ag: \(.*\)\r$/\1/p' "$tmp/headers")"
http "http://$shttp/v1/pages/http://$site/c.html" -H "If-None-Match: $etag"
expect_status 304 "storerd conditional GET"
# The repository daemon has no crawl histories: estimates are a 501.
http "http://$shttp/v1/estimates/http://$site/"
expect_status 501 "storerd estimate"
echo "serve-smoke: storerd-embedded API serves the crawled collection (304s included)"

# ---- Phase 3: webservd fronting storerd over the wire ----------------

"$tmp/webservd" -store-server "$store" -listen 127.0.0.1:0 -addr-file "$tmp/w2.addr" &
wait_addr "$tmp/w2.addr"
ws2="$(cat "$tmp/w2.addr")"

http "http://$ws2/v1/pages/http://$site/b.html"
expect_status 200 "remote-backed GET"
diff "$tmp/site/b.html" "$tmp/body"
http "http://$ws2/v1/stats"
expect_status 200 "remote-backed stats"
grep -q '"pages":5' "$tmp/body"
echo "serve-smoke: webservd -store-server serves the same bytes over the wire"

echo "serve-smoke: OK"
