#!/usr/bin/env bash
# Multi-process cluster smoke (run by `make ci` / the CI workflow), in
# three phases:
#
#  1. Determinism: launch two shardd daemons on loopback, run the same
#     simulated crawl once with in-process shards and once with
#     -shard-servers, and require byte-identical output — the
#     distributed frontier's determinism contract, checked across real
#     process and TCP boundaries.
#
#  2. Resilience: launch two WAL-backed shardd daemons running the
#     disk-backed frontier tier under a tiny resident budget, SIGKILL
#     one of them mid-crawl, restart it from the same -wal and
#     -frontier-dir directories on the same address, and require the
#     crawl to complete with output byte-identical to the
#     uninterrupted run — the reconnect/retry + frontier-persistence
#     contract under a real process kill, with the spill logs (and a
#     possibly torn spill tail) in the recovery path.
#
#  3. Dynamic membership: launch registryd plus one shardd, start a
#     crawl that discovers the cluster with -registry, join a second
#     shardd mid-crawl, gracefully retire the first after its
#     partitions migrate, and require output byte-identical to the
#     local run — the live-migration invariance contract over real
#     processes, with promcheck gating the membership metric families
#     on a mid-crawl scrape.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
cleanup() {
    kill $(jobs -p) 2>/dev/null || true
    # Let the daemons finish their shutdown snapshots before deleting
    # the WAL directories under them.
    wait 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp" ./cmd/shardd ./cmd/crawlsim ./cmd/registryd ./internal/tools/promcheck

wait_addr() {
    for _ in $(seq 1 100); do
        if [ -f "$1" ]; then return 0; fi
        sleep 0.1
    done
    echo "cluster-smoke: $1 did not appear (shardd failed to come up)" >&2
    exit 1
}

# ---- Phase 1: distributed determinism --------------------------------

"$tmp/shardd" -listen 127.0.0.1:0 -shards 8 -addr-file "$tmp/s1.addr" &
"$tmp/shardd" -listen 127.0.0.1:0 -shards 8 -addr-file "$tmp/s2.addr" &
wait_addr "$tmp/s1.addr"
wait_addr "$tmp/s2.addr"

a1="$(cat "$tmp/s1.addr")"
a2="$(cat "$tmp/s2.addr")"
echo "cluster-smoke: shardd daemons on $a1 and $a2"

"$tmp/crawlsim" -days 30 -size 300 >"$tmp/local.out"
"$tmp/crawlsim" -days 30 -size 300 -shard-servers "$a1,$a2" >"$tmp/remote.out"

diff "$tmp/local.out" "$tmp/remote.out"
echo "cluster-smoke: distributed crawl output is byte-identical to local"

# ---- Phase 2: SIGKILL + WAL restart resilience -----------------------

# -frontier-resident 64 squeezes both daemons onto the spill logs for
# any non-trivial queue, so the kill lands with most entries on disk.
"$tmp/shardd" -listen 127.0.0.1:0 -shards 8 -addr-file "$tmp/k1.addr" -wal "$tmp/wal1" \
    -frontier-dir "$tmp/fr1" -frontier-resident 64 &
k1_pid=$!
"$tmp/shardd" -listen 127.0.0.1:0 -shards 8 -addr-file "$tmp/k2.addr" -wal "$tmp/wal2" \
    -frontier-dir "$tmp/fr2" -frontier-resident 64 \
    -metrics-listen 127.0.0.1:0 -metrics-addr-file "$tmp/k2.maddr" &
wait_addr "$tmp/k1.addr"
wait_addr "$tmp/k2.addr"
wait_addr "$tmp/k2.maddr"
m2="$(cat "$tmp/k2.maddr")"
b1="$(cat "$tmp/k1.addr")"
b2="$(cat "$tmp/k2.addr")"
echo "cluster-smoke: WAL-backed shardd daemons on $b1 and $b2"

# The kill must land while the crawl is in flight; how long a crawl
# takes depends on the machine, so escalate the workload until the
# SIGKILL catches it mid-run (~1s at size 2000 on a 2020s laptop).
killed=""
for size in 2000 8000 32000; do
    days=40
    "$tmp/crawlsim" -days $days -size $size >"$tmp/ref.out"
    "$tmp/crawlsim" -days $days -size $size -shard-servers "$b1,$b2" >"$tmp/kill.out" &
    crawl_pid=$!
    sleep 0.35
    if ! kill -0 "$crawl_pid" 2>/dev/null; then
        wait "$crawl_pid" || true
        echo "cluster-smoke: size $size finished before the kill; escalating"
        continue
    fi
    # Mid-crawl observability: scrape the surviving shardd's /metrics
    # and require well-formed exposition with the wire, WAL, frame-
    # compression and frontier-residency families actually moving
    # (promcheck exits non-zero on malformed output or zero counters,
    # failing `make ci`). The compression families prove v6 negotiation
    # happened and response frames big enough to deflate actually rode
    # the flag; the residency families prove the disk tier is live —
    # entries resident, entries spilled, and bytes in the spill logs.
    curl -sS "http://$m2/metrics" >"$tmp/k2.metrics"
    "$tmp/promcheck" \
        -require webevolve_cluster_server_ops_total,webevolve_cluster_server_op_seconds,webevolve_wal_appends_total,webevolve_cluster_frames_compressed_total,webevolve_cluster_frame_raw_bytes,webevolve_cluster_frame_compressed_bytes,webevolve_frontier_resident_entries,webevolve_frontier_spilled_entries,webevolve_frontier_spill_bytes \
        <"$tmp/k2.metrics"
    echo "cluster-smoke: mid-crawl /metrics scrape is well-formed with live wire+WAL+compression+spill counters"
    kill -9 "$k1_pid"
    killed=1
    echo "cluster-smoke: SIGKILLed shardd on $b1 mid-crawl (size $size); restarting from its WAL"
    rm -f "$tmp/k1.addr"
    "$tmp/shardd" -listen "$b1" -shards 8 -addr-file "$tmp/k1.addr" -wal "$tmp/wal1" \
        -frontier-dir "$tmp/fr1" -frontier-resident 64 &
    wait_addr "$tmp/k1.addr"
    break
done
if [ -z "$killed" ]; then
    echo "cluster-smoke: crawl outran every workload; could not test the kill" >&2
    exit 1
fi

if ! wait "$crawl_pid"; then
    echo "cluster-smoke: crawl failed after shardd kill+restart" >&2
    cat "$tmp/kill.out" >&2
    exit 1
fi
diff "$tmp/ref.out" "$tmp/kill.out"
echo "cluster-smoke: kill+restart crawl output is byte-identical to the uninterrupted run"

# ---- Phase 3: dynamic membership (join + graceful leave) -------------

# Poll a /metrics endpoint until family $2 reports at least $3. Returns
# 2 if the crawl pid $4 exits first — the workload finished before the
# membership change could land, and the caller escalates it.
await_counter() {
    for _ in $(seq 1 300); do
        if ! kill -0 "$4" 2>/dev/null; then return 2; fi
        v="$(curl -sS "http://$1/metrics" 2>/dev/null |
            awk -v f="$2" '$1 == f { print int($2); exit }')"
        if [ -n "$v" ] && [ "$v" -ge "$3" ]; then return 0; fi
        sleep 0.1
    done
    echo "cluster-smoke: $2 never reached $3 on http://$1/metrics" >&2
    exit 1
}

# Tear down one escalation attempt: the crawl must still have exited
# cleanly (it ran a legitimate, just too-small, workload), then the
# attempt's daemons go away hard — no drain semantics to respect on a
# discarded cluster.
escalate() {
    if ! wait "$crawl3_pid"; then
        echo "cluster-smoke: dynamic crawl failed (size $size)" >&2
        cat "$tmp/dyn.out" >&2
        exit 1
    fi
    echo "cluster-smoke: size $size finished before the $1; escalating"
    kill -9 "$reg_pid" "$d1_pid" $d2_pid 2>/dev/null || true
    wait "$reg_pid" "$d1_pid" $d2_pid 2>/dev/null || true
}

migrated=""
for size in 2000 8000 32000; do
    rm -f "$tmp"/reg.addr "$tmp"/d1.addr "$tmp"/d1.maddr "$tmp"/d2.addr "$tmp"/d2.maddr "$tmp"/c3.maddr
    "$tmp/registryd" -listen 127.0.0.1:0 -addr-file "$tmp/reg.addr" &
    reg_pid=$!
    wait_addr "$tmp/reg.addr"
    reg="$(cat "$tmp/reg.addr")"
    "$tmp/shardd" -listen 127.0.0.1:0 -shards 8 -registry "$reg" -addr-file "$tmp/d1.addr" \
        -metrics-listen 127.0.0.1:0 -metrics-addr-file "$tmp/d1.maddr" &
    d1_pid=$!
    d2_pid=""
    wait_addr "$tmp/d1.addr"
    wait_addr "$tmp/d1.maddr"
    echo "cluster-smoke: registryd on $reg, first shardd on $(cat "$tmp/d1.addr")"

    days=40
    "$tmp/crawlsim" -days $days -size $size >"$tmp/dyn-ref.out"
    "$tmp/crawlsim" -days $days -size $size -registry "$reg" \
        -metrics-listen 127.0.0.1:0 -metrics-addr-file "$tmp/c3.maddr" >"$tmp/dyn.out" &
    crawl3_pid=$!
    wait_addr "$tmp/c3.maddr"
    cm="$(cat "$tmp/c3.maddr")"
    sleep 0.35
    if ! kill -0 "$crawl3_pid" 2>/dev/null; then escalate "join"; continue; fi

    # Join: a second shardd registers mid-crawl; the crawl client must
    # notice at a round boundary and complete one migration onto it.
    "$tmp/shardd" -listen 127.0.0.1:0 -shards 8 -registry "$reg" -addr-file "$tmp/d2.addr" \
        -metrics-listen 127.0.0.1:0 -metrics-addr-file "$tmp/d2.maddr" &
    d2_pid=$!
    if ! await_counter "$cm" webevolve_membership_migrations_total 1 "$crawl3_pid"; then
        escalate "join migration"; continue
    fi
    wait_addr "$tmp/d2.maddr"
    echo "cluster-smoke: second shardd joined mid-crawl; partitions migrated"

    # Mid-crawl observability across all three parties of the handoff:
    # the crawl client drives migrations (epoch gauge + migration
    # counter on crawlsim's /metrics), the old member serialized the
    # moved partitions (export counter + handoff bytes on the first
    # shardd), and the joiner absorbed them (import counter on the
    # second). promcheck requires each family present and non-zero.
    if ! curl -sS "http://$cm/metrics" >"$tmp/c3.metrics"; then
        escalate "metrics scrape"; continue
    fi
    "$tmp/promcheck" \
        -require webevolve_membership_epoch,webevolve_membership_migrations_total \
        <"$tmp/c3.metrics"
    curl -sS "http://$(cat "$tmp/d1.maddr")/metrics" | "$tmp/promcheck" \
        -require webevolve_membership_export_entries_total,webevolve_membership_handoff_bytes
    curl -sS "http://$(cat "$tmp/d2.maddr")/metrics" | "$tmp/promcheck" \
        -require webevolve_membership_import_entries_total,webevolve_membership_handoff_bytes
    echo "cluster-smoke: mid-crawl scrapes gate the membership metric families"

    # Graceful leave: SIGTERM the first shardd. It announces the leave,
    # keeps serving while the crawl client exports its partitions to
    # the survivor, and only then exits — queued entries lose nothing.
    kill "$d1_pid"
    if ! await_counter "$cm" webevolve_membership_migrations_total 2 "$crawl3_pid"; then
        escalate "leave migration"; continue
    fi
    wait "$d1_pid" 2>/dev/null || true
    echo "cluster-smoke: first shardd retired mid-crawl after migrating its partitions"
    migrated=1
    break
done
if [ -z "$migrated" ]; then
    echo "cluster-smoke: crawl outran every workload; could not test membership changes" >&2
    exit 1
fi

if ! wait "$crawl3_pid"; then
    echo "cluster-smoke: crawl failed across join + leave" >&2
    cat "$tmp/dyn.out" >&2
    exit 1
fi
diff "$tmp/dyn-ref.out" "$tmp/dyn.out"
echo "cluster-smoke: join+leave crawl output is byte-identical to the local run"
