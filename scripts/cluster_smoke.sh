#!/usr/bin/env bash
# Multi-process cluster smoke (run by `make ci` / the CI workflow), in
# two phases:
#
#  1. Determinism: launch two shardd daemons on loopback, run the same
#     simulated crawl once with in-process shards and once with
#     -shard-servers, and require byte-identical output — the
#     distributed frontier's determinism contract, checked across real
#     process and TCP boundaries.
#
#  2. Resilience: launch two WAL-backed shardd daemons, SIGKILL one of
#     them mid-crawl, restart it from the same -wal directory on the
#     same address, and require the crawl to complete with output
#     byte-identical to the uninterrupted run — the reconnect/retry +
#     frontier-persistence contract under a real process kill.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
cleanup() {
    kill $(jobs -p) 2>/dev/null || true
    # Let the daemons finish their shutdown snapshots before deleting
    # the WAL directories under them.
    wait 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp" ./cmd/shardd ./cmd/crawlsim ./internal/tools/promcheck

wait_addr() {
    for _ in $(seq 1 100); do
        if [ -f "$1" ]; then return 0; fi
        sleep 0.1
    done
    echo "cluster-smoke: $1 did not appear (shardd failed to come up)" >&2
    exit 1
}

# ---- Phase 1: distributed determinism --------------------------------

"$tmp/shardd" -listen 127.0.0.1:0 -shards 8 -addr-file "$tmp/s1.addr" &
"$tmp/shardd" -listen 127.0.0.1:0 -shards 8 -addr-file "$tmp/s2.addr" &
wait_addr "$tmp/s1.addr"
wait_addr "$tmp/s2.addr"

a1="$(cat "$tmp/s1.addr")"
a2="$(cat "$tmp/s2.addr")"
echo "cluster-smoke: shardd daemons on $a1 and $a2"

"$tmp/crawlsim" -days 30 -size 300 >"$tmp/local.out"
"$tmp/crawlsim" -days 30 -size 300 -shard-servers "$a1,$a2" >"$tmp/remote.out"

diff "$tmp/local.out" "$tmp/remote.out"
echo "cluster-smoke: distributed crawl output is byte-identical to local"

# ---- Phase 2: SIGKILL + WAL restart resilience -----------------------

"$tmp/shardd" -listen 127.0.0.1:0 -shards 8 -addr-file "$tmp/k1.addr" -wal "$tmp/wal1" &
k1_pid=$!
"$tmp/shardd" -listen 127.0.0.1:0 -shards 8 -addr-file "$tmp/k2.addr" -wal "$tmp/wal2" \
    -metrics-listen 127.0.0.1:0 -metrics-addr-file "$tmp/k2.maddr" &
wait_addr "$tmp/k1.addr"
wait_addr "$tmp/k2.addr"
wait_addr "$tmp/k2.maddr"
m2="$(cat "$tmp/k2.maddr")"
b1="$(cat "$tmp/k1.addr")"
b2="$(cat "$tmp/k2.addr")"
echo "cluster-smoke: WAL-backed shardd daemons on $b1 and $b2"

# The kill must land while the crawl is in flight; how long a crawl
# takes depends on the machine, so escalate the workload until the
# SIGKILL catches it mid-run (~1s at size 2000 on a 2020s laptop).
killed=""
for size in 2000 8000 32000; do
    days=40
    "$tmp/crawlsim" -days $days -size $size >"$tmp/ref.out"
    "$tmp/crawlsim" -days $days -size $size -shard-servers "$b1,$b2" >"$tmp/kill.out" &
    crawl_pid=$!
    sleep 0.35
    if ! kill -0 "$crawl_pid" 2>/dev/null; then
        wait "$crawl_pid" || true
        echo "cluster-smoke: size $size finished before the kill; escalating"
        continue
    fi
    # Mid-crawl observability: scrape the surviving shardd's /metrics
    # and require well-formed exposition with the wire and WAL families
    # actually moving (promcheck exits non-zero on malformed output or
    # zero counters, failing `make ci`).
    curl -sS "http://$m2/metrics" >"$tmp/k2.metrics"
    "$tmp/promcheck" \
        -require webevolve_cluster_server_ops_total,webevolve_cluster_server_op_seconds,webevolve_wal_appends_total \
        <"$tmp/k2.metrics"
    echo "cluster-smoke: mid-crawl /metrics scrape is well-formed with live wire+WAL counters"
    kill -9 "$k1_pid"
    killed=1
    echo "cluster-smoke: SIGKILLed shardd on $b1 mid-crawl (size $size); restarting from its WAL"
    rm -f "$tmp/k1.addr"
    "$tmp/shardd" -listen "$b1" -shards 8 -addr-file "$tmp/k1.addr" -wal "$tmp/wal1" &
    wait_addr "$tmp/k1.addr"
    break
done
if [ -z "$killed" ]; then
    echo "cluster-smoke: crawl outran every workload; could not test the kill" >&2
    exit 1
fi

if ! wait "$crawl_pid"; then
    echo "cluster-smoke: crawl failed after shardd kill+restart" >&2
    cat "$tmp/kill.out" >&2
    exit 1
fi
diff "$tmp/ref.out" "$tmp/kill.out"
echo "cluster-smoke: kill+restart crawl output is byte-identical to the uninterrupted run"
