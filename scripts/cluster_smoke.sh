#!/usr/bin/env bash
# Multi-process cluster smoke (run by `make ci` / the CI workflow):
# launch two shardd daemons on loopback, run the same simulated crawl
# once with in-process shards and once with -shard-servers, and require
# byte-identical output — the distributed frontier's determinism
# contract, checked across real process and TCP boundaries.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
cleanup() {
    kill $(jobs -p) 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp" ./cmd/shardd ./cmd/crawlsim

"$tmp/shardd" -listen 127.0.0.1:0 -shards 8 -addr-file "$tmp/s1.addr" &
"$tmp/shardd" -listen 127.0.0.1:0 -shards 8 -addr-file "$tmp/s2.addr" &

for f in s1 s2; do
    ok=""
    for _ in $(seq 1 100); do
        if [ -f "$tmp/$f.addr" ]; then ok=1; break; fi
        sleep 0.1
    done
    if [ -z "$ok" ]; then
        echo "cluster-smoke: shardd $f did not come up" >&2
        exit 1
    fi
done

a1="$(cat "$tmp/s1.addr")"
a2="$(cat "$tmp/s2.addr")"
echo "cluster-smoke: shardd daemons on $a1 and $a2"

"$tmp/crawlsim" -days 30 -size 300 >"$tmp/local.out"
"$tmp/crawlsim" -days 30 -size 300 -shard-servers "$a1,$a2" >"$tmp/remote.out"

diff "$tmp/local.out" "$tmp/remote.out"
echo "cluster-smoke: distributed crawl output is byte-identical to local"
