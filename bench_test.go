// Package webevolve_test is the benchmark harness: one benchmark per
// table and figure in the paper's evaluation (see DESIGN.md's
// per-experiment index), plus the architecture claims of Section 5 and
// the ablations DESIGN.md calls out. Each benchmark regenerates its
// artifact's numbers and reports the headline values as custom metrics,
// so
//
//	go test -bench=. -benchmem
//
// reproduces the paper end to end. EXPERIMENTS.md records paper-reported
// vs measured values.
package webevolve_test

import (
	"math"
	"math/rand"
	"testing"

	"webevolve/internal/core"
	"webevolve/internal/experiment"
	"webevolve/internal/fetch"
	"webevolve/internal/freshness"
	"webevolve/internal/frontier"
	"webevolve/internal/scheduler"
	"webevolve/internal/simweb"
	"webevolve/internal/store"
)

// benchWeb builds the shared reduced-scale experiment web: the paper's
// 270 sites with smaller windows so a full 128-day replay stays fast.
func benchWeb(b *testing.B, pagesPerSite int) *simweb.Web {
	b.Helper()
	w, err := simweb.New(simweb.PaperScaleConfig(1999, pagesPerSite))
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// --- T1: Table 1 — site selection by site-level PageRank ---

func BenchmarkTable1SiteSelection(b *testing.B) {
	cfg := simweb.Config{
		Seed: 1999,
		SitesPerDomain: map[simweb.Domain]int{
			simweb.Com: 264, simweb.Edu: 156, simweb.NetOrg: 60, simweb.Gov: 60,
		},
		PagesPerSite: 40,
	}
	var sel *experiment.SelectionResult
	for i := 0; i < b.N; i++ {
		w, err := simweb.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sel, err = experiment.SelectSites(w, experiment.SelectionConfig{
			CandidateCount: 400, KeepCount: 270, Seed: 1999,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sel.Table1[simweb.Com]), "com(paper:132)")
	b.ReportMetric(float64(sel.Table1[simweb.Edu]), "edu(paper:78)")
	b.ReportMetric(float64(sel.Table1[simweb.NetOrg]), "netorg(paper:30)")
	b.ReportMetric(float64(sel.Table1[simweb.Gov]), "gov(paper:30)")
}

// monitorOnce runs the Section 2-3 daily monitoring crawl once and
// caches nothing: each bench that needs observations re-runs it so the
// reported ns/op covers the full experiment replay.
func monitorOnce(b *testing.B, pagesPerSite, days int) *experiment.Observations {
	b.Helper()
	w := benchWeb(b, pagesPerSite)
	obs, err := experiment.Monitor(w, experiment.MonitorConfig{Days: days})
	if err != nil {
		b.Fatal(err)
	}
	return obs
}

// --- F2: Figure 2 — average change interval distribution ---

func BenchmarkFigure2ChangeIntervals(b *testing.B) {
	var r *experiment.Figure2Result
	for i := 0; i < b.N; i++ {
		obs := monitorOnce(b, 60, experiment.PaperDays)
		r = obs.Figure2()
	}
	fr := r.Overall.Fractions()
	b.ReportMetric(fr[0], "frac<=1day(paper:>0.20)")
	b.ReportMetric(r.ByDomain[simweb.Com].Fractions()[0], "com<=1day(paper:>0.40)")
	b.ReportMetric(r.ByDomain[simweb.Edu].Fractions()[4], "edu>4mo(paper:>0.50)")
	b.ReportMetric(r.ByDomain[simweb.Gov].Fractions()[4], "gov>4mo(paper:>0.50)")
	b.ReportMetric(r.MeanIntervalDays, "crude-mean-days(paper:~120)")
}

// --- F4: Figure 4 — visible lifespan, Methods 1 and 2 ---

func BenchmarkFigure4Lifespan(b *testing.B) {
	var r *experiment.Figure4Result
	for i := 0; i < b.N; i++ {
		obs := monitorOnce(b, 60, experiment.PaperDays)
		r = obs.Figure4()
	}
	m1 := r.Method1.Fractions()
	b.ReportMetric(m1[2]+m1[3], "frac>1month(paper:>0.70)")
	b.ReportMetric(r.ByDomainM1[simweb.Edu].Fractions()[3], "edu>4mo(paper:>0.50)")
	b.ReportMetric(r.ByDomainM1[simweb.Gov].Fractions()[3], "gov>4mo(paper:>0.50)")
	b.ReportMetric(r.ByDomainM1[simweb.Com].Fractions()[3], "com>4mo(shortest)")
}

// --- F5: Figure 5 — time for 50% of the web to change ---

func BenchmarkFigure5HalfLife(b *testing.B) {
	var r *experiment.Figure5Result
	for i := 0; i < b.N; i++ {
		obs := monitorOnce(b, 60, experiment.PaperDays)
		r = obs.Figure5()
	}
	if hl, ok := experiment.HalfLifeDays(r.Unchanged); ok {
		b.ReportMetric(hl, "overall-days(paper:~50)")
	}
	if hl, ok := experiment.HalfLifeDays(r.ByDomain[simweb.Com]); ok {
		b.ReportMetric(hl, "com-days(paper:11)")
	}
	if hl, ok := experiment.HalfLifeDays(r.ByDomain[simweb.Gov]); ok {
		b.ReportMetric(hl, "gov-days(paper:~120)")
	}
}

// --- F6: Figure 6 — Poisson model verification ---

func BenchmarkFigure6PoissonFit(b *testing.B) {
	var r10, r20 *experiment.Figure6Result
	for i := 0; i < b.N; i++ {
		obs := monitorOnce(b, 60, experiment.PaperDays)
		var err error
		r10, err = obs.Figure6(10, 0.2)
		if err != nil {
			b.Fatal(err)
		}
		r20, err = obs.Figure6(20, 0.2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r10.FitR2, "R2-10day(straight-line)")
	b.ReportMetric(r10.FittedRate, "rate-10day(1/interval:0.10)")
	b.ReportMetric(r20.FitR2, "R2-20day(straight-line)")
	b.ReportMetric(r20.FittedRate, "rate-20day(1/interval:0.05)")
}

// --- F7: Figure 7 — freshness evolution curves ---

func BenchmarkFigure7FreshnessEvolution(b *testing.B) {
	var batch, steady []freshness.Point
	for i := 0; i < b.N; i++ {
		var err error
		batch, steady, err = freshness.Figure7Series(4, 1, 7.0/30, 3, 200)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Batch oscillates; steady is flat; both average to the same value.
	min, max := 1.0, 0.0
	var sum float64
	for _, p := range batch {
		if p.F < min {
			min = p.F
		}
		if p.F > max {
			max = p.F
		}
		sum += p.F
	}
	b.ReportMetric(max-min, "batch-swing")
	b.ReportMetric(sum/float64(len(batch)), "batch-avg")
	b.ReportMetric(steady[0].F, "steady-const(equal-avg)")
}

// --- F8: Figure 8 — shadowing curves ---

func BenchmarkFigure8Shadowing(b *testing.B) {
	var sc, scur, bc, bcur []freshness.Point
	for i := 0; i < b.N; i++ {
		var err error
		sc, scur, bc, bcur, err = freshness.Figure8Series(4, 1, 7.0/30, 3, 200)
		if err != nil {
			b.Fatal(err)
		}
	}
	avg := func(pts []freshness.Point) float64 {
		var s float64
		for _, p := range pts {
			s += p.F
		}
		return s / float64(len(pts))
	}
	b.ReportMetric(avg(sc), "steady-crawler-avg")
	b.ReportMetric(avg(scur), "steady-current-avg")
	b.ReportMetric(avg(bc), "batch-crawler-avg")
	b.ReportMetric(avg(bcur), "batch-current-avg")
}

// --- T2: Table 2 — the 2x2 design-point freshness matrix ---

func BenchmarkTable2FreshnessMatrix(b *testing.B) {
	var m map[freshness.Design]float64
	for i := 0; i < b.N; i++ {
		var err error
		m, err = freshness.Table2(4, 1, 7.0/30)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m[freshness.Design{}], "steady-inplace(paper:0.88)")
	b.ReportMetric(m[freshness.Design{Batch: true}], "batch-inplace(paper:0.88)")
	b.ReportMetric(m[freshness.Design{Shadow: true}], "steady-shadow(paper:0.77)")
	b.ReportMetric(m[freshness.Design{Batch: true, Shadow: true}], "batch-shadow(paper:0.86)")
}

// --- S4: Section 4 sensitivity example ---

func BenchmarkSensitivityExample(b *testing.B) {
	var inPlace, shadow float64
	for i := 0; i < b.N; i++ {
		inPlace = freshness.BatchInPlace(1, 1)
		shadow = freshness.BatchShadow(1, 1, 0.5)
	}
	b.ReportMetric(inPlace, "inplace(paper:0.63)")
	b.ReportMetric(shadow, "shadow(paper:0.50)")
}

// --- F9: Figure 9 — optimal revisit frequency ---

func BenchmarkFigure9OptimalRevisit(b *testing.B) {
	// Workload drawn from the calibrated web-like mixture.
	w := benchWeb(b, 15)
	var rates []float64
	for _, s := range w.Sites() {
		for _, p := range s.AlivePages(0) {
			rates = append(rates, p.Rate())
		}
	}
	budget := float64(len(rates)) / 60 // scarce bandwidth operating point
	var gain, opt, uni float64
	var pts []freshness.Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = freshness.Figure9Curve(rates, budget)
		if err != nil {
			b.Fatal(err)
		}
		opt, uni, gain, err = freshness.AllocationGain(rates, budget)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Unimodality check: the peak must be interior.
	peak := 0
	for i, p := range pts {
		if p.F > pts[peak].F {
			peak = i
		}
	}
	b.ReportMetric(float64(peak)/float64(len(pts)), "peak-position(interior)")
	b.ReportMetric(opt, "optimal-freshness")
	b.ReportMetric(uni, "uniform-freshness")
	b.ReportMetric(100*gain, "gain%(paper:10-23)")
}

// --- A1: Section 5.3 — UpdateModule throughput (40 pages/s claim) ---

func BenchmarkUpdateModuleThroughput(b *testing.B) {
	w := benchWeb(b, 30)
	f := fetch.NewSimFetcher(w)
	coll := frontier.NewSharded(16)
	for _, s := range w.Sites() {
		for _, u := range s.WindowURLs(0) {
			coll.Push(u, 0, 0)
		}
	}
	pipe := &core.UpdatePipeline{
		Fetcher:         f,
		Coll:            coll,
		Store:           store.NewMem(),
		Policy:          scheduler.Fixed{Every: 0}, // immediately due again
		Workers:         8,
		MinIntervalDays: 0,
		MaxIntervalDays: 0, // Clamp maps the zero interval to due-now
	}
	b.ResetTimer()
	if err := pipe.Run(30, b.N); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	pagesPerSec := float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(pagesPerSec, "pages/s(paper-needs:40)")
}

// --- A2: estimator quality ablation (EP vs EB vs naive) ---

func BenchmarkEstimatorConvergence(b *testing.B) {
	// Crawl the same web with each estimator and compare achieved
	// freshness under the variable-frequency policy.
	run := func(kind core.EstimatorKind) float64 {
		w, err := simweb.New(simweb.Config{
			Seed: 5,
			SitesPerDomain: map[simweb.Domain]int{
				simweb.Com: 6, simweb.Edu: 4, simweb.NetOrg: 1, simweb.Gov: 1,
			},
			PagesPerSite: 60,
		})
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.Config{
			Seeds:          w.RootURLs(),
			CollectionSize: 500,
			PagesPerDay:    500.0 / 20,
			CycleDays:      20,
			RankEveryDays:  10,
			Freq:           core.VariableFreq,
			Estimator:      kind,
		}
		c, err := core.New(cfg, fetch.NewSimFetcher(w))
		if err != nil {
			b.Fatal(err)
		}
		ev := &core.Evaluator{Web: w}
		avg, _, err := ev.TimeAveragedFreshness(c, 140, 40, 16, cfg.CollectionSize)
		if err != nil {
			b.Fatal(err)
		}
		return avg
	}
	var ep, eb, naive float64
	for i := 0; i < b.N; i++ {
		ep = run(core.EstimatorEP)
		eb = run(core.EstimatorEB)
		naive = run(core.EstimatorNaive)
	}
	b.ReportMetric(ep, "freshness-EP")
	b.ReportMetric(eb, "freshness-EB")
	b.ReportMetric(naive, "freshness-naive")
}

// --- A3: end-to-end incremental vs periodic (Figure 10) ---

func BenchmarkIncrementalVsPeriodic(b *testing.B) {
	mk := func() (*simweb.Web, core.Config) {
		w, err := simweb.New(simweb.Config{
			Seed: 2000,
			SitesPerDomain: map[simweb.Domain]int{
				simweb.Com: 10, simweb.Edu: 6, simweb.NetOrg: 2, simweb.Gov: 2,
			},
			PagesPerSite: 100,
		})
		if err != nil {
			b.Fatal(err)
		}
		return w, core.Config{
			Seeds:          w.RootURLs(),
			CollectionSize: 1200,
			PagesPerDay:    1200.0 / 10,
			CycleDays:      10,
			BatchDays:      2.5,
			RankEveryDays:  10,
			Estimator:      core.EstimatorEP,
		}
	}
	var inc, per float64
	for i := 0; i < b.N; i++ {
		w, cfg := mk()
		cfg.Mode, cfg.Update, cfg.Freq = core.Steady, core.InPlace, core.VariableFreq
		c, err := core.New(cfg, fetch.NewSimFetcher(w))
		if err != nil {
			b.Fatal(err)
		}
		ev := &core.Evaluator{Web: w}
		inc, _, err = ev.TimeAveragedFreshness(c, 80, 20, 16, cfg.CollectionSize)
		if err != nil {
			b.Fatal(err)
		}

		w2, cfg2 := mk()
		p, err := core.NewPeriodic(cfg2, fetch.NewSimFetcher(w2))
		if err != nil {
			b.Fatal(err)
		}
		ev2 := &core.Evaluator{Web: w2}
		per, _, err = ev2.TimeAveragedFreshness(p, 80, 20, 16, cfg2.CollectionSize)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(inc, "incremental-freshness")
	b.ReportMetric(per, "periodic-freshness")
	b.ReportMetric(inc/per, "ratio(incremental-wins:>1)")
}

// --- A4: the age metric ([CGM99b]'s second metric, Section 4's remark
// that it yields the same conclusions) ---

func BenchmarkAgeMetricTable2(b *testing.B) {
	var ages map[freshness.Design]float64
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < b.N; i++ {
		var err error
		ages, err = freshness.AgeTable2(rng, 4, 1, 7.0/30, 1200, 24)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ages[freshness.Design{}], "age-steady-inplace(months)")
	b.ReportMetric(ages[freshness.Design{Batch: true}], "age-batch-inplace(months)")
	b.ReportMetric(ages[freshness.Design{Shadow: true}], "age-steady-shadow(worst)")
	b.ReportMetric(ages[freshness.Design{Batch: true, Shadow: true}], "age-batch-shadow(months)")
}

// --- Ablation: ranking cadence vs quality (the decoupling argument) ---

func BenchmarkRankingCadenceAblation(b *testing.B) {
	run := func(rankEvery float64) float64 {
		w, err := simweb.New(simweb.Config{
			Seed: 77,
			SitesPerDomain: map[simweb.Domain]int{
				simweb.Com: 6, simweb.Edu: 4, simweb.NetOrg: 2, simweb.Gov: 2,
			},
			PagesPerSite: 60,
		})
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.Config{
			Seeds:          w.RootURLs(),
			CollectionSize: 400,
			PagesPerDay:    400.0 / 10,
			CycleDays:      10,
			RankEveryDays:  rankEvery,
			Freq:           core.VariableFreq,
			Estimator:      core.EstimatorEP,
		}
		c, err := core.New(cfg, fetch.NewSimFetcher(w))
		if err != nil {
			b.Fatal(err)
		}
		if err := c.RunUntil(60); err != nil {
			b.Fatal(err)
		}
		ev := &core.Evaluator{Web: w}
		q, err := ev.Quality(c.Collection(), c.Day())
		if err != nil {
			b.Fatal(err)
		}
		return q
	}
	var fast, slow float64
	for i := 0; i < b.N; i++ {
		fast = run(5)
		slow = run(30)
	}
	b.ReportMetric(fast, "quality-rank-every-5d")
	b.ReportMetric(slow, "quality-rank-every-30d")
}

// --- Ablation: site-level vs page-level change statistics (Section 5.3) ---

func BenchmarkSiteLevelStatsAblation(b *testing.B) {
	// Compare estimate error using per-page histories vs a pooled
	// site-level aggregate, on a site with homogeneous rates and on one
	// with heterogeneous rates — the paper's "tighter interval vs
	// misleading average" trade-off, measured.
	homogeneous, heterogeneous := benchSiteStats(b, true), benchSiteStats(b, false)
	for i := 1; i < b.N; i++ {
		_ = benchSiteStats(b, true)
	}
	b.ReportMetric(homogeneous, "site-vs-page-gain(homogeneous)")
	b.ReportMetric(heterogeneous, "site-vs-page-gain(heterogeneous)")
}

// benchSiteStats returns mean |error| of page-level estimates divided by
// mean |error| of the site-level estimate; > 1 means pooling helped.
func benchSiteStats(b *testing.B, homogeneous bool) float64 {
	b.Helper()
	mix := simweb.Mixture{{Name: "m", Weight: 1, MinIntervalDays: 10, MaxIntervalDays: 10.0001}}
	if !homogeneous {
		mix = simweb.Mixture{
			{Name: "fast", Weight: 0.5, MinIntervalDays: 1, MaxIntervalDays: 2},
			{Name: "slow", Weight: 0.5, MinIntervalDays: 100, MaxIntervalDays: 200},
		}
	}
	w, err := simweb.New(simweb.Config{
		Seed:             99,
		SitesPerDomain:   map[simweb.Domain]int{simweb.Com: 1},
		PagesPerSite:     80,
		Mixtures:         map[simweb.Domain]simweb.Mixture{simweb.Com: mix},
		LifespanMeanDays: map[simweb.Domain]float64{simweb.Com: -1}, // immortal
	})
	if err != nil {
		b.Fatal(err)
	}
	f := fetch.NewSimFetcher(w)
	site := w.Sites()[0]
	type tracked struct {
		hist *freshHistory
		rate float64
	}
	var pages []tracked
	for _, p := range site.AlivePages(0) {
		pages = append(pages, tracked{hist: newFreshHistory(), rate: p.Rate()})
	}
	urls := site.WindowURLs(0)
	for day := 0.0; day <= 60; day++ {
		for i, u := range urls {
			res, err := f.Fetch(u, day)
			if err != nil || res.NotFound {
				continue
			}
			pages[i].hist.observe(day, res.Checksum)
		}
	}
	var pageErr, siteErr float64
	agg := &aggregate{}
	var meanRate float64
	for _, p := range pages {
		est := p.hist.rate()
		pageErr += abs(est - p.rate)
		agg.add(p.hist)
		meanRate += p.rate
	}
	meanRate /= float64(len(pages))
	pageErr /= float64(len(pages))
	siteErr = abs(agg.rate() - meanRate)
	if siteErr == 0 {
		siteErr = 1e-9
	}
	return pageErr / siteErr
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Minimal local helpers so the bench reads clearly without exporting
// test-only APIs from internal/changefreq.
type freshHistory struct {
	n, x    int
	prev    uint64
	started bool
	first   float64
	last    float64
}

func newFreshHistory() *freshHistory { return &freshHistory{} }

func (h *freshHistory) observe(day float64, sum uint64) {
	if !h.started {
		h.started = true
		h.prev = sum
		h.first, h.last = day, day
		return
	}
	h.n++
	if sum != h.prev {
		h.x++
		h.prev = sum
	}
	h.last = day
}

func (h *freshHistory) rate() float64 {
	if h.n == 0 || h.last <= h.first {
		return 0
	}
	iMean := (h.last - h.first) / float64(h.n)
	n, x := float64(h.n), float64(h.x)
	r := -math.Log((n-x+0.5)/(n+0.5)) / iMean
	if r < 0 {
		r = 0
	}
	return r
}

type aggregate struct {
	n, x int
	span float64
}

func (a *aggregate) add(h *freshHistory) {
	a.n += h.n
	a.x += h.x
	a.span += h.last - h.first
}

func (a *aggregate) rate() float64 {
	if a.n == 0 || a.span <= 0 {
		return 0
	}
	iMean := a.span / float64(a.n)
	n, x := float64(a.n), float64(a.x)
	r := -math.Log((n-x+0.5)/(n+0.5)) / iMean
	if r < 0 {
		r = 0
	}
	return r
}
